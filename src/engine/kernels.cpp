#include "engine/kernels.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/key_intern.hpp"
#include "sim/streams.hpp"
#include "util/prefetch.hpp"
#include "util/require.hpp"

namespace gq {
namespace {

// Lookahead distance for gather loops whose index lane is walked linearly
// (lane exports, verify passes, coverage finish): far enough to cover the
// miss latency, close enough that the touched line is still resident when
// the loop reaches it.
constexpr std::uint32_t kPrefetchAhead = 16;

// ---- compact interned state lanes -----------------------------------------
//
// Every tournament-shaped kernel runs on 32-bit rank lanes instead of
// Key-typed buffers: the state's distinct keys are interned once into a
// sorted table (sim/key_intern.hpp) and the ping-pong buffers hold ranks.
// Rank order is key order, so min/max/median/nth_element commits decide
// identically — what changes is that a round's random peer gather touches
// a 4-byte lane entry (16 per cache line) instead of a Key-sized record,
// which at n = 10^6..10^7 is the difference between latency-bound misses
// and a prefetchable stream.
//
// The session fields let consecutive kernels of one pipeline (two- then
// three-tournament; robust two then robust three) skip the O(n log n)
// re-intern: a kernel exports table[lane] back into the caller's vector on
// exit and records that lane A still encodes it; the next kernel VERIFIES
// the claim with one exact parallel compare pass (state[v] == table[lane[v]]
// for all v) and re-interns only on mismatch.  The check is exact — there
// is no hash shortcut to collide — so a caller mutating its state between
// kernel calls simply pays a fresh intern, never a wrong answer.
struct LaneScratch {
  KeyInterner interner;
  std::vector<std::uint32_t> lane_a, lane_b;  // rank ping-pong (A is live)
  std::vector<std::uint8_t> shard_ok;         // verify-pass per-shard flags
  bool session = false;      // lane A encodes the last exported state
  std::uint32_t session_n = 0;

  void ensure(std::uint32_t n, std::size_t shards) {
    if (lane_a.size() < n) {
      lane_a.resize(n);
      lane_b.resize(n);
    }
    if (shard_ok.size() < shards) shard_ok.resize(shards);
  }
};

// Puts `state` into lane A as ranks, reusing the previous session's table
// and lane when the verify pass proves them current (one gather pass, ~one
// round's cost) and re-interning otherwise (one sort, amortised over the
// dozens of gather rounds the lanes then serve).
void lane_import(Engine& engine, std::span<const Key> state, LaneScratch& s) {
  const auto n = static_cast<std::uint32_t>(state.size());
  s.ensure(n, engine.num_shards());
  if (s.session && s.session_n == n) {
    const std::span<const Key> table = s.interner.table();
    const std::uint32_t* const lane = s.lane_a.data();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          std::uint8_t ok = 1;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (v + kPrefetchAhead < end) {
              prefetch_read(&table[lane[v + kPrefetchAhead]]);
            }
            if (state[v] != table[lane[v]]) {
              ok = 0;
              break;
            }
          }
          s.shard_ok[engine.shard_of(begin)] = ok;
        });
    bool all = true;
    for (std::size_t sh = 0; sh < engine.num_shards(); ++sh) {
      all = all && s.shard_ok[sh] != 0;
    }
    if (all) return;
  }
  s.interner.intern(state, std::span<std::uint32_t>(s.lane_a.data(), n));
  s.session = true;
  s.session_n = n;
}

// Writes table[lane A] back into the caller's state.  Lane A still encodes
// the exported state afterwards, which is exactly the session claim the
// next lane_import verifies.
void lane_export(Engine& engine, LaneScratch& s, std::span<Key> state) {
  const std::span<const Key> table = s.interner.table();
  const std::uint32_t* const lane = s.lane_a.data();
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) {
          if (v + kPrefetchAhead < end) {
            prefetch_read(&table[lane[v + kPrefetchAhead]]);
          }
          state[v] = table[lane[v]];
        }
      });
}

// Restores the "lane A is live" invariant after a kernel's ping-pong swaps.
void lane_settle(LaneScratch& s, std::span<const std::uint32_t> cur) {
  if (cur.data() != s.lane_a.data()) s.lane_a.swap(s.lane_b);
}

// Engine-pooled per-round peer-pick lanes (uninitialized first-touch
// storage: each lane slot is written by its owning shard every round before
// any read).  `wide` backs the per-shard pick+sample slices of the fused
// K-sampling step when K exceeds the stack buffer.
struct PickScratch {
  FirstTouchBuffer<std::uint32_t> p0, p1, p2;
  std::vector<std::uint32_t> wide;
  std::vector<Key> wide_keys;  // sample slices of the Key representation

  void ensure(std::uint32_t n) {
    p0.ensure(n);
    p1.ensure(n);
    p2.ensure(n);
  }
  void ensure_wide(std::size_t slots) {
    if (wide.size() < slots) wide.resize(slots);
  }
  void ensure_wide_keys(std::size_t slots) {
    if (wide_keys.size() < slots) wide_keys.resize(slots);
  }
};

// One median-of-three rule for every executor and kernel: the shared
// robust_detail::median3 (core/robust_pipeline.hpp), so a tie-break tweak
// cannot diverge the bit-identity twins.
using robust_detail::median3;

// Pooled Key-typed ping-pong buffers: the below-intern-threshold
// representation of the failure-free kernels (see EngineConfig::
// intern_min_nodes — small states are cache-resident, so blocked prefetch
// over Key records beats paying an O(n log n) intern).
struct KeyPairScratch {
  std::vector<Key> a, b;

  void ensure(std::uint32_t n) {
    if (a.size() < n) {
      a.resize(n);
      b.resize(n);
    }
  }
};

// Sharded copy between the caller's key vector and the pooled Key buffers.
void copy_keys(Engine& engine, std::span<const Key> from, std::span<Key> to) {
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) to[v] = from[v];
      });
}

// The round mechanics of median dynamics, templated over the state
// representation: T = std::uint32_t (interned rank lanes) or Key (pooled
// AoS buffers).  Both run the same blocked draw/prefetch/commit structure
// with identical per-node draw order and Metrics, so the representation is
// unobservable.  Returns with *live pointing at the buffer holding the
// final state (the ping-pong may end on either).
template <typename T>
RuntimeResult median_dynamics_rounds(
    Engine& engine, std::span<T> cur, std::span<T> next,
    std::span<std::uint32_t> first, std::span<std::uint32_t> second,
    std::uint64_t iterations, std::uint64_t max_rounds,
    std::uint64_t bits_per_message, const T** live) {
  const std::uint32_t block = engine.gather_block();
  RuntimeResult out;
  std::uint64_t completed = 0;
  while (completed < iterations && out.rounds < max_rounds) {
    // First round of the iteration: the first sample.  Pure pick pass — no
    // gathers — so no blocking is needed; `cur` stays immutable until the
    // commit and doubles as the iteration-start snapshot.
    engine.begin_round();
    ++out.rounds;
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (engine.node_fails(v)) {
              ++local.failed_operations;
              first[v] = Engine::kNoPeer;
              continue;
            }
            SplitMix64 stream = engine.node_stream(v);
            first[v] = engine.sample_peer(v, stream);
            ++sent;
          }
          local.record_messages(sent, bits_per_message);
        });
    if (out.rounds >= max_rounds) break;  // half iteration: never committed

    // Second round: the second sample with the commit fused in, blocked —
    // per block the draws land first, then prefetches over both gather
    // targets, then the median commit against warm lines.  A failed pull
    // on either round forfeits the iteration's update, as in the protocol.
    engine.begin_round();
    ++out.rounds;
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t b0 = begin; b0 < end; b0 += block) {
            const std::uint32_t b1 = std::min(b0 + block, end);
            for (std::uint32_t v = b0; v < b1; ++v) {
              if (engine.node_fails(v)) {
                ++local.failed_operations;
                second[v] = Engine::kNoPeer;
                continue;
              }
              SplitMix64 stream = engine.node_stream(v);
              second[v] = engine.sample_peer(v, stream);
              ++sent;
            }
            for (std::uint32_t v = b0; v < b1; ++v) {
              if (first[v] != Engine::kNoPeer) prefetch_read(&cur[first[v]]);
              if (second[v] != Engine::kNoPeer) {
                prefetch_read(&cur[second[v]]);
              }
            }
            for (std::uint32_t v = b0; v < b1; ++v) {
              if (first[v] == Engine::kNoPeer ||
                  second[v] == Engine::kNoPeer) {
                next[v] = cur[v];
                continue;
              }
              const T& a = cur[first[v]];
              const T& b = cur[second[v]];
              next[v] = median3(a, b, cur[v]);
            }
          }
          local.record_messages(sent, bits_per_message);
        });
    std::swap(cur, next);
    ++completed;
  }
  out.all_finished = completed >= iterations;
  *live = cur.data();
  return out;
}

// The 2-TOURNAMENT iteration loop, templated over the state
// representation (interned ranks or Keys) exactly like
// median_dynamics_rounds.  Returns the live buffer via *live.
template <typename T>
std::size_t two_tournament_rounds(Engine& engine, std::span<T> cur,
                                  std::span<T> next,
                                  std::span<std::uint32_t> first,
                                  std::span<std::uint32_t> second,
                                  const TwoTournamentSchedule& schedule,
                                  bool truncate_last, bool suppress_high,
                                  std::uint64_t bits, const T** live) {
  const std::uint32_t block = engine.gather_block();
  std::size_t iterations = 0;
  for (std::size_t iter = 0; iter < schedule.iterations(); ++iter) {
    GQ_SPAN("tournament/two_iteration");
    const double delta = truncate_last ? schedule.delta[iter] : 1.0;

    // Round 1: every node pulls its first sample.  Pick pass only; `cur`
    // is the iteration snapshot and stays immutable until the commit.
    engine.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          for (std::uint32_t v = begin; v < end; ++v) {
            SplitMix64 stream = engine.node_stream(v);
            first[v] = engine.sample_peer(v, stream);
          }
          local.record_messages(end - begin, bits);
        });

    // Round 2: the delta coin and, if it lands, the second sample — then
    // the tournament commit, blocked: draws, prefetches over both samples'
    // state lines, compute against warm lines.  Per-node draw order (coin,
    // then peer, from one stream) is exactly the sequential path's.
    engine.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t b0 = begin; b0 < end; b0 += block) {
            const std::uint32_t b1 = std::min(b0 + block, end);
            for (std::uint32_t v = b0; v < b1; ++v) {
              SplitMix64 stream = engine.node_stream(v);
              const bool tournament =
                  delta >= 1.0 || rand_bernoulli(stream, delta);
              if (tournament) {
                second[v] = engine.sample_peer(v, stream);
                ++sent;
              } else {
                second[v] = Engine::kNoPeer;
              }
            }
            for (std::uint32_t v = b0; v < b1; ++v) {
              prefetch_read(&cur[first[v]]);
              if (second[v] != Engine::kNoPeer) {
                prefetch_read(&cur[second[v]]);
              }
            }
            for (std::uint32_t v = b0; v < b1; ++v) {
              const T& a = cur[first[v]];
              if (second[v] == Engine::kNoPeer) {
                next[v] = a;
              } else {
                const T& b = cur[second[v]];
                next[v] = suppress_high ? std::min(a, b) : std::max(a, b);
              }
            }
          }
          local.record_messages(sent, bits);
        });
    std::swap(cur, next);

    ++iterations;
  }
  *live = cur.data();
  return iterations;
}

// The 3-TOURNAMENT iteration loop plus the fused final K-sampling step,
// templated like two_tournament_rounds.  key_of maps a state entry to the
// Key it denotes (identity for the Key representation, a table lookup for
// ranks) — only the final outputs materialise Keys.
template <typename T, typename KeyOf>
std::size_t three_tournament_rounds(
    Engine& engine, PickScratch& picks, std::span<T> cur, std::span<T> next,
    const std::array<std::span<std::uint32_t>, 3>& pk,
    const ThreeTournamentSchedule& schedule, std::uint32_t k_samples,
    std::uint64_t bits, std::vector<Key>& outputs, KeyOf&& key_of,
    const T** live) {
  const std::uint32_t n = engine.size();
  const std::uint32_t block = engine.gather_block();
  std::size_t iterations = 0;
  for (std::size_t iter = 0; iter < schedule.iterations(); ++iter) {
    GQ_SPAN("tournament/three_iteration");
    // Three pulls = three rounds, all reading the iteration-start state
    // (`cur` is immutable until the commit, which writes `next`).  The
    // first two are pure pick passes; the third is blocked — its draws,
    // prefetches over all three samples' state lines, and the fused
    // median commit run per block against warm lines.
    for (int pull = 0; pull < 3; ++pull) {
      engine.begin_round();
      engine.parallel_shards(
          [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
            const auto& out_picks = pk[static_cast<std::size_t>(pull)];
            if (pull < 2) {
              for (std::uint32_t v = begin; v < end; ++v) {
                SplitMix64 stream = engine.node_stream(v);
                out_picks[v] = engine.sample_peer(v, stream);
              }
            } else {
              for (std::uint32_t b0 = begin; b0 < end; b0 += block) {
                const std::uint32_t b1 = std::min(b0 + block, end);
                for (std::uint32_t v = b0; v < b1; ++v) {
                  SplitMix64 stream = engine.node_stream(v);
                  out_picks[v] = engine.sample_peer(v, stream);
                }
                for (std::uint32_t v = b0; v < b1; ++v) {
                  prefetch_read(&cur[pk[0][v]]);
                  prefetch_read(&cur[pk[1][v]]);
                  prefetch_read(&cur[pk[2][v]]);
                }
                for (std::uint32_t v = b0; v < b1; ++v) {
                  next[v] =
                      median3(cur[pk[0][v]], cur[pk[1][v]], cur[pk[2][v]]);
                }
              }
            }
            local.record_messages(end - begin, bits);
          });
    }
    std::swap(cur, next);
    ++iterations;
  }

  // Final step: every node samples K values and outputs their median.  The
  // tournament state is immutable during these rounds, so the K sampling
  // rounds fuse into one parallel section: the round counter advances K
  // times up front, and each node derives the per-round streams directly —
  // the same (seed, round, v) derivation the per-round kernel would use,
  // so draws and Metrics are bit-identical while the K-pass sample matrix
  // disappears entirely.  Each node's K picks are drawn (and prefetched)
  // before its K gathers, so the draw ALU covers the miss latency.
  const std::uint64_t first_sample_round = engine.round() + 1;
  for (std::uint32_t j = 0; j < k_samples; ++j) engine.begin_round();
  outputs.resize(n);
  constexpr std::uint32_t kMaxStackSamples = 64;
  const std::size_t shards = engine.num_shards();
  const auto wide_k = static_cast<std::size_t>(k_samples);
  if (k_samples > kMaxStackSamples) {
    // Oversized K: per-shard pick and sample slices come from pooled
    // lanes, so even this path allocates nothing in steady state.  Picks
    // are always 32-bit; samples live in the pool matching the state
    // representation (ranks share `wide` behind the pick region).
    if constexpr (std::is_same_v<T, Key>) {
      picks.ensure_wide(shards * wide_k);
      picks.ensure_wide_keys(shards * wide_k);
    } else {
      picks.ensure_wide(2 * shards * wide_k);
    }
  }
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
        std::uint32_t stack_picks[kMaxStackSamples];
        T stack_samples[kMaxStackSamples];
        std::uint32_t* pick = stack_picks;
        T* samp = stack_samples;
        if (k_samples > kMaxStackSamples) {
          const std::size_t shard = engine.shard_of(begin);
          pick = picks.wide.data() + shard * wide_k;
          if constexpr (std::is_same_v<T, Key>) {
            samp = picks.wide_keys.data() + shard * wide_k;
          } else {
            samp = picks.wide.data() + (shards + shard) * wide_k;
          }
        }
        for (std::uint32_t v = begin; v < end; ++v) {
          for (std::uint32_t j = 0; j < k_samples; ++j) {
            SplitMix64 stream = streams::node_stream(
                engine.seed(), first_sample_round + j, v);
            pick[j] = engine.sample_peer(v, stream);
            prefetch_read(&cur[pick[j]]);
          }
          for (std::uint32_t j = 0; j < k_samples; ++j) {
            samp[j] = cur[pick[j]];
          }
          T* const mid = samp + k_samples / 2;
          std::nth_element(samp, mid, samp + k_samples);
          outputs[v] = key_of(*mid);
        }
        local.record_messages(
            static_cast<std::uint64_t>(k_samples) * (end - begin), bits);
      });
  *live = cur.data();
  return iterations;
}

}  // namespace

RuntimeResult median_dynamics(Engine& engine, std::vector<Key>& state,
                              std::uint64_t iterations,
                              std::uint64_t max_rounds,
                              std::uint64_t bits_per_message) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");

  RuntimeResult out;
  if (iterations == 0) {
    out.all_finished = true;
    return out;
  }
  auto& picks = engine.scratch<PickScratch>();
  picks.ensure(n);
  const std::span<std::uint32_t> first = picks.p0.span(n);
  const std::span<std::uint32_t> second = picks.p1.span(n);

  // Representation choice: interning costs an O(n log n) sort amortised
  // over the gather rounds it shrinks, and median dynamics runs a
  // caller-chosen iteration count that is often tiny (the scale benches
  // run 2-3).  Short runs — and small states, which are cache-resident
  // anyway (EngineConfig::intern_min_nodes) — therefore stay on pooled
  // Key buffers, where the blocked prefetch still hides the gather
  // latency; long large runs intern.  The representation is unobservable
  // (same draws, same commit rule, same Metrics), so the thresholds are
  // pure tuning.
  constexpr std::uint64_t kInternMinIterations = 8;
  if (iterations >= kInternMinIterations &&
      n >= engine.intern_min_nodes()) {
    auto& lanes = engine.scratch<LaneScratch>();
    lane_import(engine, state, lanes);
    const std::uint32_t* live = nullptr;
    out = median_dynamics_rounds<std::uint32_t>(
        engine, {lanes.lane_a.data(), n}, {lanes.lane_b.data(), n}, first,
        second, iterations, max_rounds, bits_per_message, &live);
    lane_settle(lanes, std::span<const std::uint32_t>(live, n));
    lane_export(engine, lanes, state);
    return out;
  }

  auto& keys = engine.scratch<KeyPairScratch>();
  keys.ensure(n);
  copy_keys(engine, state, {keys.a.data(), n});
  const Key* live = nullptr;
  out = median_dynamics_rounds<Key>(engine, {keys.a.data(), n},
                                    {keys.b.data(), n}, first, second,
                                    iterations, max_rounds, bits_per_message,
                                    &live);
  copy_keys(engine, {live, n}, state);
  return out;
}

TwoTournamentOutcome two_tournament(Engine& engine, std::vector<Key>& state,
                                    double phi, double eps,
                                    bool truncate_last) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");
  GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");
  GQ_REQUIRE(engine.faultless(),
             "two_tournament is the failure-free variant; use "
             "robust_two_tournament under a failure model or adversary");

  TwoTournamentOutcome out;
  const auto [side, start] = tournament_side(phi, eps);
  out.side = side;
  out.schedule = two_tournament_schedule(start, eps);
  const bool suppress_high = side == TournamentSide::kSuppressHigh;
  const std::uint64_t bits = key_bits(n);

  auto& picks = engine.scratch<PickScratch>();
  picks.ensure(n);
  const std::span<std::uint32_t> first = picks.p0.span(n);
  const std::span<std::uint32_t> second = picks.p1.span(n);

  if (n >= engine.intern_min_nodes()) {
    auto& lanes = engine.scratch<LaneScratch>();
    lane_import(engine, state, lanes);
    const std::uint32_t* live = nullptr;
    out.iterations = two_tournament_rounds<std::uint32_t>(
        engine, {lanes.lane_a.data(), n}, {lanes.lane_b.data(), n}, first,
        second, out.schedule, truncate_last, suppress_high, bits, &live);
    lane_settle(lanes, std::span<const std::uint32_t>(live, n));
    lane_export(engine, lanes, state);
    return out;
  }

  auto& keys = engine.scratch<KeyPairScratch>();
  keys.ensure(n);
  copy_keys(engine, state, {keys.a.data(), n});
  const Key* live = nullptr;
  out.iterations = two_tournament_rounds<Key>(
      engine, {keys.a.data(), n}, {keys.b.data(), n}, first, second,
      out.schedule, truncate_last, suppress_high, bits, &live);
  copy_keys(engine, {live, n}, state);
  return out;
}

ThreeTournamentOutcome three_tournament(Engine& engine,
                                        std::vector<Key>& state, double eps,
                                        std::uint32_t final_sample_size) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");
  GQ_REQUIRE(final_sample_size >= 1, "final sample size must be positive");
  GQ_REQUIRE(engine.faultless(),
             "three_tournament is the failure-free variant; use "
             "robust_three_tournament under a failure model or adversary");
  const std::uint32_t k_samples = final_sample_size | 1u;  // force odd

  ThreeTournamentOutcome out;
  out.schedule = three_tournament_schedule(eps, n);
  const std::uint64_t bits = key_bits(n);

  auto& picks = engine.scratch<PickScratch>();
  picks.ensure(n);
  const std::array<std::span<std::uint32_t>, 3> pk = {
      picks.p0.span(n), picks.p1.span(n), picks.p2.span(n)};

  if (n >= engine.intern_min_nodes()) {
    auto& lanes = engine.scratch<LaneScratch>();
    lane_import(engine, state, lanes);
    const std::uint32_t* live = nullptr;
    out.iterations = three_tournament_rounds<std::uint32_t>(
        engine, picks, {lanes.lane_a.data(), n}, {lanes.lane_b.data(), n},
        pk, out.schedule, k_samples, bits, out.outputs,
        [&](std::uint32_t rank) { return lanes.interner.key_at(rank); },
        &live);
    lane_settle(lanes, std::span<const std::uint32_t>(live, n));
    lane_export(engine, lanes, state);
    return out;
  }

  auto& keys = engine.scratch<KeyPairScratch>();
  keys.ensure(n);
  copy_keys(engine, state, {keys.a.data(), n});
  const Key* live = nullptr;
  out.iterations = three_tournament_rounds<Key>(
      engine, picks, {keys.a.data(), n}, {keys.b.data(), n}, pk,
      out.schedule, k_samples, bits, out.outputs,
      [](const Key& k) { return k; }, &live);
  copy_keys(engine, {live, n}, state);
  return out;
}

// ---- shared-schedule multi-quantile kernels --------------------------------

namespace {

// The q-lane rank matrices of the shared multi-quantile schedule: node v's
// lane l lives at mat[v * q + l], so one node's whole vector is contiguous
// (q <= kMaxSharedLanes = 64 lanes = at most four cache lines) and a peer
// gather prefetches rows, not scattered entries.  Ping-pong like the
// single-lane kernels: the live matrix is the iteration-start snapshot,
// commits write the other.  `tmask` carries each node's Round-B tournament
// lane bitmask from the draw pass to the commit pass.
struct MultiLaneScratch {
  std::vector<std::uint32_t> mat_a, mat_b;
  std::vector<std::uint64_t> tmask;
  std::uint32_t q = 0;
  bool a_live = true;

  void ensure(std::uint32_t n, std::uint32_t q_lanes) {
    const std::size_t cells = static_cast<std::size_t>(n) * q_lanes;
    if (mat_a.size() < cells) {
      mat_a.resize(cells);
      mat_b.resize(cells);
    }
    if (tmask.size() < n) tmask.resize(n);
  }
};

// Prefetches a node's whole q-lane row (one line per 16 lanes).
inline void prefetch_lane_row(const std::uint32_t* row, std::uint32_t q) {
  for (std::uint32_t off = 0; off < q; off += 16) prefetch_read(row + off);
}

}  // namespace

void multi_tournament_begin(Engine& engine, std::span<const Key> keys,
                            std::uint32_t lanes) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(keys.size() == n, "one key per node required");
  GQ_REQUIRE(lanes >= 1 && lanes <= kMaxSharedLanes,
             "lane count must lie in [1, kMaxSharedLanes]");
  GQ_REQUIRE(engine.faultless(),
             "the shared multi-quantile schedule is the failure-free "
             "variant; the pipeline routes robust runs per target");
  auto& s = engine.scratch<MultiLaneScratch>();
  auto& ls = engine.scratch<LaneScratch>();
  auto& picks = engine.scratch<PickScratch>();
  s.ensure(n, lanes);
  picks.ensure(n);
  s.q = lanes;
  s.a_live = true;
  // Intern once (or verify a live session), then broadcast each node's
  // base rank across its q lane slots.  Lane A is not touched again, so
  // the session claim it carries stays valid for the next kernel.
  lane_import(engine, keys, ls);
  const std::uint32_t* const base = ls.lane_a.data();
  std::uint32_t* const mat = s.mat_a.data();
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) {
          const std::uint32_t r = base[v];
          std::uint32_t* const row =
              mat + static_cast<std::size_t>(v) * lanes;
          for (std::uint32_t l = 0; l < lanes; ++l) row[l] = r;
        }
      });
}

void multi_two_iteration(Engine& engine,
                         std::span<const MultiLaneStep> steps) {
  auto& s = engine.scratch<MultiLaneScratch>();
  auto& picks = engine.scratch<PickScratch>();
  const std::uint32_t n = engine.size();
  const std::uint32_t q = s.q;
  GQ_REQUIRE(steps.size() == q, "one step per lane required");
  const std::uint64_t bits = key_bits(n);
  std::uint64_t active = 0;
  for (const MultiLaneStep& st : steps) active += st.active ? 1 : 0;
  const std::span<std::uint32_t> first = picks.p0.span(n);
  const std::span<std::uint32_t> second = picks.p1.span(n);
  const std::uint32_t* const cur =
      s.a_live ? s.mat_a.data() : s.mat_b.data();
  std::uint32_t* const next = s.a_live ? s.mat_b.data() : s.mat_a.data();
  std::uint64_t* const tmask = s.tmask.data();
  const std::uint32_t block = engine.gather_block();

  // Round A: one shared first sample per node; the message carries the
  // active lanes.  Pick pass only — `cur` is the iteration snapshot.
  engine.begin_round();
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
        for (std::uint32_t v = begin; v < end; ++v) {
          SplitMix64 stream = engine.node_stream(v);
          first[v] = engine.sample_peer(v, stream);
        }
        local.record_messages(end - begin, active * bits);
      });

  // Round B: per-lane delta coins in lane order (delta >= 1.0 consumes no
  // draw, as in the sequential path), one shared second sample when any
  // lane tournaments, then the blocked per-lane commit against warm rows.
  // Messages are bucketed by tournament-lane count in per-shard
  // accumulators and flushed once per bucket.
  engine.begin_round();
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
        std::uint64_t counts[kMaxSharedLanes + 1] = {};
        for (std::uint32_t b0 = begin; b0 < end; b0 += block) {
          const std::uint32_t b1 = std::min(b0 + block, end);
          for (std::uint32_t v = b0; v < b1; ++v) {
            SplitMix64 stream = engine.node_stream(v);
            std::uint64_t mask = 0;
            for (std::uint32_t l = 0; l < q; ++l) {
              if (!steps[l].active) continue;
              const bool tournament =
                  steps[l].delta >= 1.0 ||
                  rand_bernoulli(stream, steps[l].delta);
              if (tournament) mask |= std::uint64_t{1} << l;
            }
            tmask[v] = mask;
            const auto t = static_cast<std::uint32_t>(std::popcount(mask));
            ++counts[t];
            second[v] =
                t > 0 ? engine.sample_peer(v, stream) : Engine::kNoPeer;
          }
          for (std::uint32_t v = b0; v < b1; ++v) {
            prefetch_lane_row(
                cur + static_cast<std::size_t>(first[v]) * q, q);
            if (second[v] != Engine::kNoPeer) {
              prefetch_lane_row(
                  cur + static_cast<std::size_t>(second[v]) * q, q);
            }
          }
          for (std::uint32_t v = b0; v < b1; ++v) {
            const std::uint32_t* const fa =
                cur + static_cast<std::size_t>(first[v]) * q;
            const std::uint32_t* const sa =
                second[v] != Engine::kNoPeer
                    ? cur + static_cast<std::size_t>(second[v]) * q
                    : nullptr;
            const std::uint32_t* const own =
                cur + static_cast<std::size_t>(v) * q;
            std::uint32_t* const out =
                next + static_cast<std::size_t>(v) * q;
            const std::uint64_t mask = tmask[v];
            for (std::uint32_t l = 0; l < q; ++l) {
              if (!steps[l].active) {
                out[l] = own[l];  // finished lane keeps its value
              } else if ((mask >> l) & 1) {
                out[l] = steps[l].suppress_high ? std::min(fa[l], sa[l])
                                                : std::max(fa[l], sa[l]);
              } else {
                out[l] = fa[l];
              }
            }
          }
        }
        for (std::uint32_t t = 1; t <= q; ++t) {
          local.record_messages(counts[t], t * bits);
        }
      });
  s.a_live = !s.a_live;
}

void multi_three_iteration(Engine& engine) {
  auto& s = engine.scratch<MultiLaneScratch>();
  auto& picks = engine.scratch<PickScratch>();
  const std::uint32_t n = engine.size();
  const std::uint32_t q = s.q;
  const std::uint64_t bits = key_bits(n);
  const std::array<std::span<std::uint32_t>, 3> pk = {
      picks.p0.span(n), picks.p1.span(n), picks.p2.span(n)};
  const std::uint32_t* const cur =
      s.a_live ? s.mat_a.data() : s.mat_b.data();
  std::uint32_t* const next = s.a_live ? s.mat_b.data() : s.mat_a.data();
  const std::uint32_t block = engine.gather_block();

  // Three shared pulls = three rounds reading the iteration-start matrix;
  // every message carries the full q-lane vector.  The first two are pure
  // pick passes; the third is blocked with the per-lane median commit
  // fused in against warm rows.
  for (int pull = 0; pull < 3; ++pull) {
    engine.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          const auto& out_picks = pk[static_cast<std::size_t>(pull)];
          if (pull < 2) {
            for (std::uint32_t v = begin; v < end; ++v) {
              SplitMix64 stream = engine.node_stream(v);
              out_picks[v] = engine.sample_peer(v, stream);
            }
          } else {
            for (std::uint32_t b0 = begin; b0 < end; b0 += block) {
              const std::uint32_t b1 = std::min(b0 + block, end);
              for (std::uint32_t v = b0; v < b1; ++v) {
                SplitMix64 stream = engine.node_stream(v);
                out_picks[v] = engine.sample_peer(v, stream);
              }
              for (std::uint32_t v = b0; v < b1; ++v) {
                prefetch_lane_row(
                    cur + static_cast<std::size_t>(pk[0][v]) * q, q);
                prefetch_lane_row(
                    cur + static_cast<std::size_t>(pk[1][v]) * q, q);
                prefetch_lane_row(
                    cur + static_cast<std::size_t>(pk[2][v]) * q, q);
              }
              for (std::uint32_t v = b0; v < b1; ++v) {
                const std::uint32_t* const r0 =
                    cur + static_cast<std::size_t>(pk[0][v]) * q;
                const std::uint32_t* const r1 =
                    cur + static_cast<std::size_t>(pk[1][v]) * q;
                const std::uint32_t* const r2 =
                    cur + static_cast<std::size_t>(pk[2][v]) * q;
                std::uint32_t* const out =
                    next + static_cast<std::size_t>(v) * q;
                for (std::uint32_t l = 0; l < q; ++l) {
                  out[l] = median3(r0[l], r1[l], r2[l]);
                }
              }
            }
          }
          local.record_messages(end - begin, q * bits);
        });
  }
  s.a_live = !s.a_live;
}

void multi_final_sample(Engine& engine, std::uint32_t k_samples,
                        std::vector<std::vector<Key>>& outputs) {
  auto& s = engine.scratch<MultiLaneScratch>();
  auto& lanes = engine.scratch<LaneScratch>();
  auto& picks = engine.scratch<PickScratch>();
  const std::uint32_t n = engine.size();
  const std::uint32_t q = s.q;
  const std::uint64_t bits = key_bits(n);
  const std::uint32_t* const cur =
      s.a_live ? s.mat_a.data() : s.mat_b.data();

  // K shared sampling rounds fused into one parallel section, exactly like
  // the single-target kernel (see three_tournament_rounds): the round
  // counter advances K times up front and each node derives the per-round
  // streams directly, so draws and Metrics are bit-identical to K
  // per-round sweeps.  Each node's K picks are drawn (and their rows
  // prefetched) before its q per-lane medians fold.
  const std::uint64_t first_sample_round = engine.round() + 1;
  for (std::uint32_t j = 0; j < k_samples; ++j) engine.begin_round();
  outputs.assign(q, std::vector<Key>(n));
  constexpr std::uint32_t kMaxStackSamples = 64;
  const std::size_t shards = engine.num_shards();
  const auto wide_k = static_cast<std::size_t>(k_samples);
  if (k_samples > kMaxStackSamples) {
    picks.ensure_wide(2 * shards * wide_k);
  }
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
        std::uint32_t stack_picks[kMaxStackSamples];
        std::uint32_t stack_samples[kMaxStackSamples];
        std::uint32_t* pick = stack_picks;
        std::uint32_t* samp = stack_samples;
        if (k_samples > kMaxStackSamples) {
          const std::size_t shard = engine.shard_of(begin);
          pick = picks.wide.data() + shard * wide_k;
          samp = picks.wide.data() + (shards + shard) * wide_k;
        }
        for (std::uint32_t v = begin; v < end; ++v) {
          for (std::uint32_t j = 0; j < k_samples; ++j) {
            SplitMix64 stream = streams::node_stream(
                engine.seed(), first_sample_round + j, v);
            pick[j] = engine.sample_peer(v, stream);
            prefetch_lane_row(
                cur + static_cast<std::size_t>(pick[j]) * q, q);
          }
          for (std::uint32_t l = 0; l < q; ++l) {
            for (std::uint32_t j = 0; j < k_samples; ++j) {
              samp[j] = cur[static_cast<std::size_t>(pick[j]) * q + l];
            }
            std::uint32_t* const mid = samp + k_samples / 2;
            std::nth_element(samp, mid, samp + k_samples);
            outputs[l][v] = lanes.interner.key_at(*mid);
          }
        }
        local.record_messages(
            static_cast<std::uint64_t>(k_samples) * (end - begin),
            q * bits);
      });
}

// ---- robust (failure-model) kernels ---------------------------------------

namespace {

// Engine-pooled working state of the robust kernels beyond the shared rank
// lanes: good-flag ping-pong buffers (A is the iteration-start snapshot the
// fan-out pulls read, commits write B), the per-shard recorded-pick and
// K-sample slices, a staging row for vector<bool> results (vector<bool> is
// bit-packed, so shards cannot write it concurrently), and the coverage
// tail's lanes — source-index ping-pong plus the original-outputs snapshot
// it indexes into (coverage only copies answers around, so a 4-byte origin
// index carries a node's answer; the Keys materialise once in finish()).
struct RobustScratch {
  std::vector<std::uint8_t> good_a, good_b;  // good/valid flag ping-pong
  std::vector<std::uint8_t> flags8;          // result staging row
  std::vector<std::uint32_t> pick_slots;     // shards x pulls recorded draws
  std::vector<std::uint32_t> samples;        // shards x K gathered ranks
  std::vector<std::uint32_t> cov_picks;      // shards x block coverage picks
  std::vector<std::uint32_t> src_a, src_b;   // coverage source-index lanes
  std::vector<Key> snapshot;                 // coverage: original outputs
  std::vector<std::int64_t> shard_unserved;

  void ensure(std::uint32_t n) {
    if (good_a.size() < n) {
      good_a.resize(n);
      good_b.resize(n);
      flags8.resize(n);
    }
  }
  void ensure_slots(std::size_t slots) {
    if (pick_slots.size() < slots) pick_slots.resize(slots);
  }
  void ensure_samples(std::size_t slots) {
    if (samples.size() < slots) samples.resize(slots);
  }
  void ensure_coverage(std::uint32_t n, std::size_t cov_pick_slots) {
    if (src_a.size() < n) {
      src_a.resize(n);
      src_b.resize(n);
      snapshot.resize(n);
    }
    if (cov_picks.size() < cov_pick_slots) cov_picks.resize(cov_pick_slots);
  }
  void ensure_shards(std::size_t shards) {
    if (shard_unserved.size() < shards) shard_unserved.resize(shards);
  }
};

// The engine instantiation of the shared robust control flow in
// core/robust_pipeline.hpp; the sequential twin lives in core/robust.cpp.
//
// Each phase batches its k-fold fan-out pulls by advancing the round
// counter for the whole pull block up front and deriving every (round,
// node) stream directly — the same derivation the per-round loop would
// use, so draws, failure coins, and Metrics are bit-identical while the
// k round sweeps fuse into one parallel section per iteration.  The fold
// per node reads only the immutable block-start snapshot (rank lane A,
// good A), so no scatter is involved (see robust_pipeline.hpp on why the
// fan-out pulls are pull-shaped).
class EngineRobustOps {
 public:
  EngineRobustOps(Engine& engine, std::vector<Key>& state,
                  std::vector<bool>& good)
      : engine_(engine),
        state_(state),
        good_(good),
        n_(engine.size()),
        bits_(key_bits(n_)),
        lanes_(engine.scratch<LaneScratch>()),
        scratch_(engine.scratch<RobustScratch>()) {
    scratch_.ensure(n_);
    lane_import(engine, state, lanes_);
    cur_ = std::span<std::uint32_t>(lanes_.lane_a.data(), n_);
    next_ = std::span<std::uint32_t>(lanes_.lane_b.data(), n_);
    g_cur_ = std::span<std::uint8_t>(scratch_.good_a.data(), n_);
    g_next_ = std::span<std::uint8_t>(scratch_.good_b.data(), n_);
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          for (std::uint32_t v = begin; v < end; ++v) {
            g_cur_[v] = good[v] ? 1 : 0;
          }
        });
  }

  // Copies the carried state and good flags back to the caller's vectors
  // (sequentially for `good`: vector<bool> is bit-packed).
  void finish() {
    lane_settle(lanes_, cur_);
    lane_export(engine_, lanes_, state_);
    for (std::uint32_t v = 0; v < n_; ++v) good_[v] = g_cur_[v] != 0;
  }

  [[nodiscard]] std::uint32_t size() const { return n_; }
  [[nodiscard]] double max_failure_probability() const {
    return engine_.failures().max_probability();
  }

  // The one copy of the fan-out pull mechanics every robust phase folds
  // over: advances the round counter for the whole block (`pulls` pull
  // rounds plus `trailing_rounds` the caller's commit owns, e.g. the
  // 2-tournament's delta-coin round), then runs one parallel section in
  // which node v walks its pull rounds — failure coin billed, message
  // billed on success — records the peers of its successful pulls, then
  // folds up to `capacity` good samples out of the immutable block-start
  // snapshot and hands commit(v, samples, cnt, collecting) the result.
  //
  // Recording-then-folding (instead of folding inside the draw loop) is
  // what creates the prefetch window: the good-flag and rank-lane lines of
  // the first few recorded peers go in flight while the remaining draws'
  // ALU work runs.  It also draws peers the sequential loop skips once a
  // node's samples are full — unobservable either way, since every draw is
  // a pure function of (seed, round, node) and skipped draws leave no
  // trace in results or Metrics; the *collected* samples are the first
  // `capacity` good ones in pull-round order on both paths.  Nodes that
  // are already bad never draw (also unobservable), but every non-failed
  // pull is billed regardless, exactly as in the sequential path.
  template <typename Commit>
  void fanout_pull_block(std::uint32_t pulls, std::uint32_t trailing_rounds,
                         std::uint32_t capacity, Commit&& commit) {
    GQ_SPAN("robust/fanout_pull_block");
    const std::uint64_t base = engine_.round() + 1;
    for (std::uint32_t r = 0; r < pulls + trailing_rounds; ++r) {
      engine_.begin_round();
    }
    constexpr std::uint32_t kInlineSamples = 3;
    const std::uint32_t prefetch_cap = capacity + 2;
    scratch_.ensure_slots(engine_.num_shards() *
                          static_cast<std::size_t>(pulls));
    if (capacity > kInlineSamples) {
      scratch_.ensure_samples(engine_.num_shards() *
                              static_cast<std::size_t>(capacity));
    }
    engine_.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint32_t* const slots =
              scratch_.pick_slots.data() +
              engine_.shard_of(begin) * static_cast<std::size_t>(pulls);
          std::uint32_t inline_samples[kInlineSamples];
          std::uint32_t* const samp =
              capacity <= kInlineSamples
                  ? inline_samples
                  : scratch_.samples.data() +
                        engine_.shard_of(begin) *
                            static_cast<std::size_t>(capacity);
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            const bool collecting = g_cur_[v] != 0;
            std::uint32_t recorded = 0;
            for (std::uint32_t r = 0; r < pulls; ++r) {
              if (engine_.op_fails(v, base + r)) {
                ++local.failed_operations;
                continue;
              }
              ++sent;
              if (!collecting) continue;
              SplitMix64 stream =
                  streams::node_stream(engine_.seed(), base + r, v);
              const std::uint32_t p = streams::sample_peer(v, n_, stream);
              slots[recorded] = p;
              if (recorded < prefetch_cap) {
                prefetch_read(&g_cur_[p]);
                prefetch_read(&cur_[p]);
              }
              ++recorded;
            }
            std::uint32_t cnt = 0;
            for (std::uint32_t i = 0; i < recorded && cnt < capacity; ++i) {
              const std::uint32_t p = slots[i];
              if (g_cur_[p] != 0) samp[cnt++] = cur_[p];
            }
            commit(v, samp, cnt, collecting);
          }
          local.record_messages(sent, bits_);
        });
  }

  void two_iteration(std::uint32_t pulls, double delta, bool suppress_high) {
    // The pull block plus one trailing round for the delta coin (whose
    // randomness is independent of the pulls, as in the sequential path).
    const std::uint64_t commit_round = engine_.round() + 1 + pulls;
    fanout_pull_block(
        pulls, /*trailing_rounds=*/1, /*capacity=*/2,
        [&](std::uint32_t v, const std::uint32_t* samp, std::uint32_t cnt,
            bool collecting) {
          if (!collecting || cnt < 2) {
            next_[v] = cur_[v];
            g_next_[v] = 0;
            return;
          }
          g_next_[v] = 1;
          SplitMix64 stream =
              streams::node_stream(engine_.seed(), commit_round, v);
          const bool tournament =
              delta >= 1.0 || rand_bernoulli(stream, delta);
          next_[v] = robust_detail::two_tournament_commit(
              samp[0], samp[1], tournament, suppress_high);
        });
    std::swap(cur_, next_);
    std::swap(g_cur_, g_next_);
  }

  void three_iteration(std::uint32_t pulls) {
    fanout_pull_block(
        pulls, /*trailing_rounds=*/0, /*capacity=*/3,
        [&](std::uint32_t v, const std::uint32_t* samp, std::uint32_t cnt,
            bool collecting) {
          if (!collecting || cnt < 3) {
            next_[v] = cur_[v];
            g_next_[v] = 0;
            return;
          }
          g_next_[v] = 1;
          next_[v] = robust_detail::median3(samp[0], samp[1], samp[2]);
        });
    std::swap(cur_, next_);
    std::swap(g_cur_, g_next_);
  }

  void final_median_sample(std::uint32_t final_pulls, std::uint32_t k,
                           std::vector<Key>& outputs,
                           std::vector<bool>& valid) {
    const std::span<std::uint8_t> valid8(scratch_.flags8.data(), n_);
    outputs.assign(n_, Key::infinite());
    fanout_pull_block(
        final_pulls, /*trailing_rounds=*/0, /*capacity=*/k,
        [&](std::uint32_t v, std::uint32_t* samp, std::uint32_t cnt,
            bool collecting) {
          if (!collecting || cnt < k) {
            valid8[v] = 0;
            return;
          }
          std::uint32_t* const mid = samp + k / 2;
          std::nth_element(samp, mid, samp + k);
          outputs[v] = lanes_.interner.key_at(*mid);
          valid8[v] = 1;
        });
    valid.resize(n_);
    for (std::uint32_t v = 0; v < n_; ++v) valid[v] = valid8[v] != 0;
  }

 private:
  Engine& engine_;
  std::vector<Key>& state_;
  std::vector<bool>& good_;
  std::uint32_t n_;
  std::uint64_t bits_;
  LaneScratch& lanes_;
  RobustScratch& scratch_;
  std::span<std::uint32_t> cur_, next_;
  std::span<std::uint8_t> g_cur_, g_next_;
};

// The batched coverage tail on compact lanes: a node's carried answer is
// represented by the index of the node that originated it (coverage only
// copies answers, so propagating the 4-byte origin index is equivalent),
// valid flags ping-pong through the pooled byte rows, and the early-exit
// check reads per-shard unserved counters maintained by each round's
// commit instead of scanning all n flags.  The answer Keys materialise
// once in finish() from the pooled snapshot of the original outputs.
class EngineCoverageOps {
 public:
  EngineCoverageOps(Engine& engine, std::vector<Key>& outputs,
                    std::vector<bool>& valid)
      : engine_(engine),
        outputs_(outputs),
        valid_(valid),
        n_(engine.size()),
        bits_(key_bits(n_)),
        block_(std::min(engine.gather_block(), engine.config().shard_size)),
        scratch_(engine.scratch<RobustScratch>()) {
    scratch_.ensure(n_);
    scratch_.ensure_shards(engine.num_shards());
    scratch_.ensure_coverage(
        n_, engine.num_shards() * static_cast<std::size_t>(block_));
    src_cur_ = std::span<std::uint32_t>(scratch_.src_a.data(), n_);
    src_next_ = std::span<std::uint32_t>(scratch_.src_b.data(), n_);
    v_cur_ = std::span<std::uint8_t>(scratch_.good_a.data(), n_);
    v_next_ = std::span<std::uint8_t>(scratch_.good_b.data(), n_);
    snapshot_ = std::span<Key>(scratch_.snapshot.data(), n_);
    unserved_ = std::span<std::int64_t>(scratch_.shard_unserved.data(),
                                        engine.num_shards());
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          std::int64_t open = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            snapshot_[v] = outputs[v];
            src_cur_[v] = v;
            const bool served = valid[v];
            v_cur_[v] = served ? 1 : 0;
            open += served ? 0 : 1;
          }
          unserved_[engine_.shard_of(begin)] = open;
        });
  }

  void finish() {
    engine_.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          for (std::uint32_t v = begin; v < end; ++v) {
            if (v + kPrefetchAhead < end) {
              prefetch_read(&snapshot_[src_cur_[v + kPrefetchAhead]]);
            }
            outputs_[v] = snapshot_[src_cur_[v]];
          }
        });
    for (std::uint32_t v = 0; v < n_; ++v) valid_[v] = v_cur_[v] != 0;
  }

  [[nodiscard]] bool all_served() const {
    std::int64_t open = 0;
    for (const std::int64_t s : unserved_) open += s;
    return open == 0;
  }

  void coverage_round() {
    engine_.begin_round();
    engine_.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          // Pick sentinel: a node's own id means "already served" (a peer
          // draw never returns the drawing node), kNoPeer means "failed".
          std::uint32_t* const picks =
              scratch_.cov_picks.data() +
              engine_.shard_of(begin) * static_cast<std::size_t>(block_);
          std::uint64_t sent = 0;
          std::int64_t open = 0;
          for (std::uint32_t b0 = begin; b0 < end; b0 += block_) {
            const std::uint32_t b1 = std::min(b0 + block_, end);
            for (std::uint32_t v = b0; v < b1; ++v) {
              if (v_cur_[v] != 0) {
                picks[v - b0] = v;
                continue;
              }
              if (engine_.node_fails(v)) {
                ++local.failed_operations;
                picks[v - b0] = Engine::kNoPeer;
                continue;
              }
              SplitMix64 stream = engine_.node_stream(v);
              picks[v - b0] = engine_.sample_peer(v, stream);
              ++sent;
            }
            for (std::uint32_t v = b0; v < b1; ++v) {
              const std::uint32_t p = picks[v - b0];
              if (p != v && p != Engine::kNoPeer) {
                prefetch_read(&v_cur_[p]);
                prefetch_read(&src_cur_[p]);
              }
            }
            for (std::uint32_t v = b0; v < b1; ++v) {
              const std::uint32_t p = picks[v - b0];
              if (p == v) {  // already served: carry the answer forward
                src_next_[v] = src_cur_[v];
                v_next_[v] = 1;
                continue;
              }
              if (p == Engine::kNoPeer) {  // failed this round
                src_next_[v] = src_cur_[v];
                v_next_[v] = 0;
                ++open;
                continue;
              }
              if (v_cur_[p] != 0) {
                src_next_[v] = src_cur_[p];
                v_next_[v] = 1;
              } else {
                src_next_[v] = src_cur_[v];
                v_next_[v] = 0;
                ++open;
              }
            }
          }
          unserved_[engine_.shard_of(begin)] = open;
          local.record_messages(sent, bits_);
        });
    std::swap(src_cur_, src_next_);
    std::swap(v_cur_, v_next_);
  }

 private:
  Engine& engine_;
  std::vector<Key>& outputs_;
  std::vector<bool>& valid_;
  std::uint32_t n_;
  std::uint64_t bits_;
  std::uint32_t block_;
  RobustScratch& scratch_;
  std::span<std::uint32_t> src_cur_, src_next_;
  std::span<std::uint8_t> v_cur_, v_next_;
  std::span<Key> snapshot_;
  std::span<std::int64_t> unserved_;
};

}  // namespace

RobustTwoTournamentOutcome robust_two_tournament(Engine& engine,
                                                 std::vector<Key>& state,
                                                 std::vector<bool>& good,
                                                 double phi, double eps,
                                                 bool truncate_last) {
  GQ_REQUIRE(state.size() == engine.size() && good.size() == engine.size(),
             "state and good flags must have one entry per node");
  EngineRobustOps ops(engine, state, good);
  RobustTwoTournamentOutcome out =
      robust_detail::robust_two_tournament_impl(ops, phi, eps, truncate_last);
  ops.finish();
  return out;
}

RobustThreeTournamentOutcome robust_three_tournament(
    Engine& engine, std::vector<Key>& state, std::vector<bool>& good,
    double eps, std::uint32_t final_sample_size) {
  GQ_REQUIRE(state.size() == engine.size() && good.size() == engine.size(),
             "state and good flags must have one entry per node");
  EngineRobustOps ops(engine, state, good);
  RobustThreeTournamentOutcome out =
      robust_detail::robust_three_tournament_impl(ops, eps,
                                                  final_sample_size);
  ops.finish();
  return out;
}

std::uint64_t robust_coverage(Engine& engine, std::vector<Key>& outputs,
                              std::vector<bool>& valid, std::uint32_t t) {
  GQ_REQUIRE(outputs.size() == engine.size() && valid.size() == engine.size(),
             "outputs and valid flags must have one entry per node");
  EngineCoverageOps ops(engine, outputs, valid);
  const std::uint64_t rounds = robust_detail::robust_coverage_impl(ops, t);
  ops.finish();
  return rounds;
}

void adopt_intern_session(Engine& engine, std::span<const Key> table,
                          std::span<const std::uint32_t> lanes) {
  GQ_REQUIRE(lanes.size() == engine.size(),
             "adopted session needs one lane entry per node");
  const auto n = static_cast<std::uint32_t>(lanes.size());
  LaneScratch& s = engine.scratch<LaneScratch>();
  s.ensure(n, engine.num_shards());
  s.interner.adopt(table);
  std::copy(lanes.begin(), lanes.end(), s.lane_a.begin());
  s.session = true;
  s.session_n = n;
}

}  // namespace gq
