#include "engine/kernels.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <utility>
#include <vector>

#include "sim/streams.hpp"
#include "util/require.hpp"

namespace gq {
namespace {

// Engine-pooled working state for the batched kernels (Engine::scratch):
// two ping-pong key buffers plus the per-round peer picks.  Ping-pong
// replaces the per-iteration snapshot copy — commits read buffer A and
// write buffer B, so A *is* the iteration-start snapshot for free — and
// the AoS Key layout keeps each random peer read to one cache line where
// the previous struct-of-arrays layout touched three.
struct KernelScratch {
  std::vector<Key> a, b;
  std::vector<std::uint32_t> picks0, picks1, picks2;

  void ensure(std::uint32_t n) {
    if (a.size() < n) {
      a.resize(n);
      b.resize(n);
      picks0.resize(n);
      picks1.resize(n);
      picks2.resize(n);
    }
  }
};

// One median-of-three rule for every executor and kernel: the shared
// robust_detail::median3 (core/robust_pipeline.hpp), so a tie-break tweak
// cannot diverge the bit-identity twins.
using robust_detail::median3;

// Sharded copy between the caller's key vector and the pooled ping-pong
// buffers (each kernel copies in on entry and out on exit).
void copy_keys(Engine& engine, std::span<const Key> from, std::span<Key> to) {
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) to[v] = from[v];
      });
}

}  // namespace

RuntimeResult median_dynamics(Engine& engine, std::vector<Key>& state,
                              std::uint64_t iterations,
                              std::uint64_t max_rounds,
                              std::uint64_t bits_per_message) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");

  RuntimeResult out;
  if (iterations == 0) {
    out.all_finished = true;
    return out;
  }
  auto& scratch = engine.scratch<KernelScratch>();
  scratch.ensure(n);
  std::span<Key> cur(scratch.a.data(), n);
  std::span<Key> next(scratch.b.data(), n);
  const std::span<std::uint32_t> first(scratch.picks0.data(), n);
  const std::span<std::uint32_t> second(scratch.picks1.data(), n);
  copy_keys(engine, state, cur);

  std::uint64_t completed = 0;
  while (completed < iterations && out.rounds < max_rounds) {
    // First round of the iteration: the first sample.  `cur` is immutable
    // until the commit, so it doubles as the iteration-start snapshot.
    engine.begin_round();
    ++out.rounds;
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (engine.node_fails(v)) {
              ++local.failed_operations;
              first[v] = Engine::kNoPeer;
              continue;
            }
            SplitMix64 stream = engine.node_stream(v);
            first[v] = engine.sample_peer(v, stream);
            ++sent;
          }
          local.record_messages(sent, bits_per_message);
        });
    if (out.rounds >= max_rounds) break;  // half iteration: never committed

    // Second round: the second sample, with the commit fused in — it reads
    // only the immutable `cur` and writes only `next`.  A failed pull on
    // either round forfeits the iteration's update, as in the protocol.
    engine.begin_round();
    ++out.rounds;
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (engine.node_fails(v)) {
              ++local.failed_operations;
              second[v] = Engine::kNoPeer;
              continue;
            }
            SplitMix64 stream = engine.node_stream(v);
            second[v] = engine.sample_peer(v, stream);
            ++sent;
          }
          local.record_messages(sent, bits_per_message);
          for (std::uint32_t v = begin; v < end; ++v) {
            if (first[v] == Engine::kNoPeer || second[v] == Engine::kNoPeer) {
              next[v] = cur[v];
              continue;
            }
            const Key& a = cur[first[v]];
            const Key& b = cur[second[v]];
            next[v] = median3(a, b, cur[v]);
          }
        });
    std::swap(cur, next);
    ++completed;
  }
  out.all_finished = completed >= iterations;
  copy_keys(engine, cur, state);
  return out;
}

TwoTournamentOutcome two_tournament(Engine& engine, std::vector<Key>& state,
                                    double phi, double eps,
                                    bool truncate_last) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");
  GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");
  GQ_REQUIRE(engine.failures().never_fails(),
             "two_tournament is the failure-free variant; use "
             "robust_two_tournament under a failure model");

  TwoTournamentOutcome out;
  const auto [side, start] = tournament_side(phi, eps);
  out.side = side;
  out.schedule = two_tournament_schedule(start, eps);
  const bool suppress_high = side == TournamentSide::kSuppressHigh;
  const std::uint64_t bits = key_bits(n);

  auto& scratch = engine.scratch<KernelScratch>();
  scratch.ensure(n);
  std::span<Key> cur(scratch.a.data(), n);
  std::span<Key> next(scratch.b.data(), n);
  const std::span<std::uint32_t> first(scratch.picks0.data(), n);
  copy_keys(engine, state, cur);

  for (std::size_t iter = 0; iter < out.schedule.iterations(); ++iter) {
    const double delta = truncate_last ? out.schedule.delta[iter] : 1.0;

    // Round 1: every node pulls its first sample; `cur` is the iteration
    // snapshot and stays immutable until the commit writes `next`.
    engine.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          for (std::uint32_t v = begin; v < end; ++v) {
            SplitMix64 stream = engine.node_stream(v);
            first[v] = engine.sample_peer(v, stream);
          }
          local.record_messages(end - begin, bits);
        });

    // Round 2: the delta coin and, if it lands, the second sample; the
    // tournament commit reads the immutable `cur` only.
    engine.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            SplitMix64 stream = engine.node_stream(v);
            const bool tournament =
                delta >= 1.0 || rand_bernoulli(stream, delta);
            if (tournament) {
              const std::uint32_t second = engine.sample_peer(v, stream);
              ++sent;
              const Key& a = cur[first[v]];
              const Key& b = cur[second];
              next[v] = suppress_high ? std::min(a, b) : std::max(a, b);
            } else {
              next[v] = cur[first[v]];
            }
          }
          local.record_messages(sent, bits);
        });
    std::swap(cur, next);

    ++out.iterations;
  }
  copy_keys(engine, cur, state);
  return out;
}

ThreeTournamentOutcome three_tournament(Engine& engine,
                                        std::vector<Key>& state, double eps,
                                        std::uint32_t final_sample_size) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");
  GQ_REQUIRE(final_sample_size >= 1, "final sample size must be positive");
  GQ_REQUIRE(engine.failures().never_fails(),
             "three_tournament is the failure-free variant; use "
             "robust_three_tournament under a failure model");
  const std::uint32_t k_samples = final_sample_size | 1u;  // force odd

  ThreeTournamentOutcome out;
  out.schedule = three_tournament_schedule(eps, n);
  const std::uint64_t bits = key_bits(n);

  auto& scratch = engine.scratch<KernelScratch>();
  scratch.ensure(n);
  std::span<Key> cur(scratch.a.data(), n);
  std::span<Key> next(scratch.b.data(), n);
  const std::array<std::span<std::uint32_t>, 3> picks = {
      std::span<std::uint32_t>(scratch.picks0.data(), n),
      std::span<std::uint32_t>(scratch.picks1.data(), n),
      std::span<std::uint32_t>(scratch.picks2.data(), n)};
  copy_keys(engine, state, cur);

  for (std::size_t iter = 0; iter < out.schedule.iterations(); ++iter) {
    // Three pulls = three rounds, all reading the iteration-start state
    // (`cur` is immutable until the commit, which writes `next`).
    for (int pull = 0; pull < 3; ++pull) {
      engine.begin_round();
      engine.parallel_shards(
          [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
            const auto& out_picks = picks[static_cast<std::size_t>(pull)];
            for (std::uint32_t v = begin; v < end; ++v) {
              SplitMix64 stream = engine.node_stream(v);
              out_picks[v] = engine.sample_peer(v, stream);
            }
            local.record_messages(end - begin, bits);
            // Fuse the median commit into the last pull round: it reads
            // only the immutable `cur` and the node's own pick slots.
            if (pull == 2) {
              for (std::uint32_t v = begin; v < end; ++v) {
                next[v] = median3(cur[picks[0][v]], cur[picks[1][v]],
                                  cur[picks[2][v]]);
              }
            }
          });
    }
    std::swap(cur, next);
    ++out.iterations;
  }

  // Final step: every node samples K values and outputs their median.  The
  // tournament state is immutable during these rounds, so the K sampling
  // rounds fuse into one parallel section: the round counter advances K
  // times up front, and each node derives the per-round streams directly —
  // the same (seed, round, v) derivation the per-round kernel would use,
  // so draws and Metrics are bit-identical while the K-pass sample matrix
  // (n x K keys — 360 MB at n = 10^6) disappears entirely.
  const std::uint64_t first_sample_round = engine.round() + 1;
  for (std::uint32_t j = 0; j < k_samples; ++j) engine.begin_round();
  out.outputs.resize(n);
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
        std::vector<Key> samp(k_samples);
        for (std::uint32_t v = begin; v < end; ++v) {
          for (std::uint32_t j = 0; j < k_samples; ++j) {
            SplitMix64 stream = streams::node_stream(
                engine.seed(), first_sample_round + j, v);
            samp[j] = cur[engine.sample_peer(v, stream)];
          }
          const auto mid = samp.begin() + k_samples / 2;
          std::nth_element(samp.begin(), mid, samp.end());
          out.outputs[v] = *mid;
        }
        local.record_messages(
            static_cast<std::uint64_t>(k_samples) * (end - begin), bits);
      });
  copy_keys(engine, cur, state);
  return out;
}

// ---- robust (failure-model) kernels ---------------------------------------

namespace {

// Engine-pooled working state of the robust kernels: state and good-flag
// ping-pong buffers (A is the iteration-start snapshot the fan-out pulls
// read, commits write B), per-shard sample slices for the final K-sample
// step, a staging row for vector<bool> results (vector<bool> is bit-packed,
// so shards cannot write it concurrently), and the coverage loop's
// per-shard unserved counters.  The 2-/3-sample tournament iterations need
// no per-node sample storage at all — collect and commit fuse into one
// parallel section, so a node's good samples live in registers.
struct RobustScratch {
  std::vector<Key> state_a, state_b;
  std::vector<std::uint8_t> good_a, good_b;
  std::vector<std::uint8_t> flags8;      // result staging row
  std::vector<Key> final_samples;        // shards x K sample slices
  std::vector<std::int64_t> shard_unserved;

  void ensure(std::uint32_t n) {
    if (state_a.size() < n) {
      state_a.resize(n);
      state_b.resize(n);
      good_a.resize(n);
      good_b.resize(n);
      flags8.resize(n);
    }
  }
  void ensure_final(std::size_t slots) {
    if (final_samples.size() < slots) final_samples.resize(slots);
  }
  void ensure_shards(std::size_t shards) {
    if (shard_unserved.size() < shards) shard_unserved.resize(shards);
  }
};

// The engine instantiation of the shared robust control flow in
// core/robust_pipeline.hpp; the sequential twin lives in core/robust.cpp.
//
// Each phase batches its k-fold fan-out pulls by advancing the round
// counter for the whole pull block up front and deriving every (round,
// node) stream directly — the same derivation the per-round loop would
// use, so draws, failure coins, and Metrics are bit-identical while the
// k round sweeps fuse into one parallel section per iteration.  The fold
// per node reads only the immutable block-start snapshot (state A, good
// A), so no scatter is involved (see robust_pipeline.hpp on why the
// fan-out pulls are pull-shaped).
class EngineRobustOps {
 public:
  EngineRobustOps(Engine& engine, std::vector<Key>& state,
                  std::vector<bool>& good)
      : engine_(engine),
        state_(state),
        good_(good),
        n_(engine.size()),
        bits_(key_bits(n_)),
        scratch_(engine.scratch<RobustScratch>()) {
    scratch_.ensure(n_);
    cur_ = std::span<Key>(scratch_.state_a.data(), n_);
    next_ = std::span<Key>(scratch_.state_b.data(), n_);
    g_cur_ = std::span<std::uint8_t>(scratch_.good_a.data(), n_);
    g_next_ = std::span<std::uint8_t>(scratch_.good_b.data(), n_);
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          for (std::uint32_t v = begin; v < end; ++v) {
            cur_[v] = state[v];
            g_cur_[v] = good[v] ? 1 : 0;
          }
        });
  }

  // Copies the carried state and good flags back to the caller's vectors
  // (sequentially for `good`: vector<bool> is bit-packed).
  void finish() {
    engine_.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          for (std::uint32_t v = begin; v < end; ++v) state_[v] = cur_[v];
        });
    for (std::uint32_t v = 0; v < n_; ++v) good_[v] = g_cur_[v] != 0;
  }

  [[nodiscard]] std::uint32_t size() const { return n_; }
  [[nodiscard]] double max_failure_probability() const {
    return engine_.failures().max_probability();
  }

  // The one copy of the fan-out pull mechanics every robust phase folds
  // over: advances the round counter for the whole block (`pulls` pull
  // rounds plus `trailing_rounds` the caller's commit owns, e.g. the
  // 2-tournament's delta-coin round), then runs one parallel section in
  // which node v walks its pull rounds — failure coin billed, message
  // billed on success, up to `capacity` samples collected from good peers
  // out of the immutable block-start snapshot — and hands
  // commit(v, samples, cnt, collecting) the result.  A node that is
  // already bad, or already holds its `capacity` good samples, still
  // pulls (the message is billed) but the peer draw has no observable
  // effect, so it is skipped.  Samples stay register-resident for the
  // tournament arities; larger capacities use a pooled per-shard slice,
  // so the n x k sample matrix of the sequential path never materialises.
  template <typename Commit>
  void fanout_pull_block(std::uint32_t pulls, std::uint32_t trailing_rounds,
                         std::uint32_t capacity, Commit&& commit) {
    const std::uint64_t base = engine_.round() + 1;
    for (std::uint32_t r = 0; r < pulls + trailing_rounds; ++r) {
      engine_.begin_round();
    }
    constexpr std::uint32_t kInlineSamples = 3;
    if (capacity > kInlineSamples) {
      scratch_.ensure_final(engine_.num_shards() *
                            static_cast<std::size_t>(capacity));
    }
    engine_.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          Key inline_samples[kInlineSamples];
          Key* const samp =
              capacity <= kInlineSamples
                  ? inline_samples
                  : scratch_.final_samples.data() +
                        engine_.shard_of(begin) *
                            static_cast<std::size_t>(capacity);
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            const bool collecting = g_cur_[v] != 0;
            std::uint32_t cnt = 0;
            for (std::uint32_t r = 0; r < pulls; ++r) {
              if (streams::node_fails(engine_.seed(), base + r, v,
                                      engine_.failures())) {
                ++local.failed_operations;
                continue;
              }
              ++sent;
              if (!collecting || cnt >= capacity) continue;
              SplitMix64 stream =
                  streams::node_stream(engine_.seed(), base + r, v);
              const std::uint32_t p = streams::sample_peer(v, n_, stream);
              if (g_cur_[p] != 0) samp[cnt++] = cur_[p];
            }
            commit(v, samp, cnt, collecting);
          }
          local.record_messages(sent, bits_);
        });
  }

  void two_iteration(std::uint32_t pulls, double delta, bool suppress_high) {
    // The pull block plus one trailing round for the delta coin (whose
    // randomness is independent of the pulls, as in the sequential path).
    const std::uint64_t commit_round = engine_.round() + 1 + pulls;
    fanout_pull_block(
        pulls, /*trailing_rounds=*/1, /*capacity=*/2,
        [&](std::uint32_t v, const Key* samp, std::uint32_t cnt,
            bool collecting) {
          if (!collecting || cnt < 2) {
            next_[v] = cur_[v];
            g_next_[v] = 0;
            return;
          }
          g_next_[v] = 1;
          SplitMix64 stream =
              streams::node_stream(engine_.seed(), commit_round, v);
          const bool tournament =
              delta >= 1.0 || rand_bernoulli(stream, delta);
          next_[v] = robust_detail::two_tournament_commit(
              samp[0], samp[1], tournament, suppress_high);
        });
    std::swap(cur_, next_);
    std::swap(g_cur_, g_next_);
  }

  void three_iteration(std::uint32_t pulls) {
    fanout_pull_block(
        pulls, /*trailing_rounds=*/0, /*capacity=*/3,
        [&](std::uint32_t v, const Key* samp, std::uint32_t cnt,
            bool collecting) {
          if (!collecting || cnt < 3) {
            next_[v] = cur_[v];
            g_next_[v] = 0;
            return;
          }
          g_next_[v] = 1;
          next_[v] = robust_detail::median3(samp[0], samp[1], samp[2]);
        });
    std::swap(cur_, next_);
    std::swap(g_cur_, g_next_);
  }

  void final_median_sample(std::uint32_t final_pulls, std::uint32_t k,
                           std::vector<Key>& outputs,
                           std::vector<bool>& valid) {
    const std::span<std::uint8_t> valid8(scratch_.flags8.data(), n_);
    outputs.assign(n_, Key::infinite());
    fanout_pull_block(
        final_pulls, /*trailing_rounds=*/0, /*capacity=*/k,
        [&](std::uint32_t v, Key* samp, std::uint32_t cnt, bool collecting) {
          if (!collecting || cnt < k) {
            valid8[v] = 0;
            return;
          }
          Key* const mid = samp + k / 2;
          std::nth_element(samp, mid, samp + k);
          outputs[v] = *mid;
          valid8[v] = 1;
        });
    valid.resize(n_);
    for (std::uint32_t v = 0; v < n_; ++v) valid[v] = valid8[v] != 0;
  }

 private:
  Engine& engine_;
  std::vector<Key>& state_;
  std::vector<bool>& good_;
  std::uint32_t n_;
  std::uint64_t bits_;
  RobustScratch& scratch_;
  std::span<Key> cur_, next_;
  std::span<std::uint8_t> g_cur_, g_next_;
};

// The batched coverage tail: outputs/valid ping-pong through the pooled
// buffers (the sequential path re-copies both arrays every round), and the
// early-exit check reads per-shard unserved counters maintained by each
// round's commit instead of scanning all n flags.
class EngineCoverageOps {
 public:
  EngineCoverageOps(Engine& engine, std::vector<Key>& outputs,
                    std::vector<bool>& valid)
      : engine_(engine),
        outputs_(outputs),
        valid_(valid),
        n_(engine.size()),
        bits_(key_bits(n_)),
        scratch_(engine.scratch<RobustScratch>()) {
    scratch_.ensure(n_);
    scratch_.ensure_shards(engine.num_shards());
    cur_ = std::span<Key>(scratch_.state_a.data(), n_);
    next_ = std::span<Key>(scratch_.state_b.data(), n_);
    v_cur_ = std::span<std::uint8_t>(scratch_.good_a.data(), n_);
    v_next_ = std::span<std::uint8_t>(scratch_.good_b.data(), n_);
    unserved_ = std::span<std::int64_t>(scratch_.shard_unserved.data(),
                                        engine.num_shards());
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          std::int64_t open = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            cur_[v] = outputs[v];
            const bool served = valid[v];
            v_cur_[v] = served ? 1 : 0;
            open += served ? 0 : 1;
          }
          unserved_[engine_.shard_of(begin)] = open;
        });
  }

  void finish() {
    engine_.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          for (std::uint32_t v = begin; v < end; ++v) outputs_[v] = cur_[v];
        });
    for (std::uint32_t v = 0; v < n_; ++v) valid_[v] = v_cur_[v] != 0;
  }

  [[nodiscard]] bool all_served() const {
    std::int64_t open = 0;
    for (const std::int64_t s : unserved_) open += s;
    return open == 0;
  }

  void coverage_round() {
    engine_.begin_round();
    engine_.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          std::int64_t open = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            next_[v] = cur_[v];
            if (v_cur_[v] != 0) {
              v_next_[v] = 1;
              continue;
            }
            if (engine_.node_fails(v)) {
              ++local.failed_operations;
              v_next_[v] = 0;
              ++open;
              continue;
            }
            SplitMix64 stream = engine_.node_stream(v);
            const std::uint32_t p = engine_.sample_peer(v, stream);
            ++sent;
            if (v_cur_[p] != 0) {
              next_[v] = cur_[p];
              v_next_[v] = 1;
            } else {
              v_next_[v] = 0;
              ++open;
            }
          }
          unserved_[engine_.shard_of(begin)] = open;
          local.record_messages(sent, bits_);
        });
    std::swap(cur_, next_);
    std::swap(v_cur_, v_next_);
  }

 private:
  Engine& engine_;
  std::vector<Key>& outputs_;
  std::vector<bool>& valid_;
  std::uint32_t n_;
  std::uint64_t bits_;
  RobustScratch& scratch_;
  std::span<Key> cur_, next_;
  std::span<std::uint8_t> v_cur_, v_next_;
  std::span<std::int64_t> unserved_;
};

}  // namespace

RobustTwoTournamentOutcome robust_two_tournament(Engine& engine,
                                                 std::vector<Key>& state,
                                                 std::vector<bool>& good,
                                                 double phi, double eps,
                                                 bool truncate_last) {
  GQ_REQUIRE(state.size() == engine.size() && good.size() == engine.size(),
             "state and good flags must have one entry per node");
  EngineRobustOps ops(engine, state, good);
  RobustTwoTournamentOutcome out =
      robust_detail::robust_two_tournament_impl(ops, phi, eps, truncate_last);
  ops.finish();
  return out;
}

RobustThreeTournamentOutcome robust_three_tournament(
    Engine& engine, std::vector<Key>& state, std::vector<bool>& good,
    double eps, std::uint32_t final_sample_size) {
  GQ_REQUIRE(state.size() == engine.size() && good.size() == engine.size(),
             "state and good flags must have one entry per node");
  EngineRobustOps ops(engine, state, good);
  RobustThreeTournamentOutcome out =
      robust_detail::robust_three_tournament_impl(ops, eps,
                                                  final_sample_size);
  ops.finish();
  return out;
}

std::uint64_t robust_coverage(Engine& engine, std::vector<Key>& outputs,
                              std::vector<bool>& valid, std::uint32_t t) {
  GQ_REQUIRE(outputs.size() == engine.size() && valid.size() == engine.size(),
             "outputs and valid flags must have one entry per node");
  EngineCoverageOps ops(engine, outputs, valid);
  const std::uint64_t rounds = robust_detail::robust_coverage_impl(ops, t);
  ops.finish();
  return rounds;
}

}  // namespace gq
