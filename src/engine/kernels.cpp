#include "engine/kernels.hpp"

#include <algorithm>
#include <array>

#include "engine/soa_state.hpp"
#include "util/require.hpp"

namespace gq {

RuntimeResult median_dynamics(Engine& engine, std::vector<Key>& state,
                              std::uint64_t iterations,
                              std::uint64_t max_rounds,
                              std::uint64_t bits_per_message) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");

  RuntimeResult out;
  if (iterations == 0) {
    out.all_finished = true;
    return out;
  }
  SoAKeys cur = SoAKeys::from_keys(state);
  SoAKeys snap(n);
  std::vector<std::uint32_t> first(n);
  std::vector<std::uint32_t> second(n);

  std::uint64_t completed = 0;
  while (completed < iterations && out.rounds < max_rounds) {
    // First round of the iteration: snapshot (each shard copies its own
    // slice; the section barrier completes it before any cross-shard read
    // next round) and the first sample.
    engine.begin_round();
    ++out.rounds;
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          snap.copy_slice(cur, begin, end);
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (engine.node_fails(v)) {
              ++local.failed_operations;
              first[v] = Engine::kNoPeer;
              continue;
            }
            SplitMix64 stream = engine.node_stream(v);
            first[v] = engine.sample_peer(v, stream);
            ++sent;
          }
          local.record_messages(sent, bits_per_message);
        });
    if (out.rounds >= max_rounds) break;  // half iteration: never committed

    // Second round: the second sample, with the commit fused in — it reads
    // only the immutable snapshot plus the node's own slots.  A failed pull
    // on either round forfeits the iteration's update, as in the protocol.
    engine.begin_round();
    ++out.rounds;
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (engine.node_fails(v)) {
              ++local.failed_operations;
              second[v] = Engine::kNoPeer;
              continue;
            }
            SplitMix64 stream = engine.node_stream(v);
            second[v] = engine.sample_peer(v, stream);
            ++sent;
          }
          local.record_messages(sent, bits_per_message);
          for (std::uint32_t v = begin; v < end; ++v) {
            if (first[v] == Engine::kNoPeer || second[v] == Engine::kNoPeer) {
              continue;
            }
            const Key a = snap.get(first[v]);
            const Key b = snap.get(second[v]);
            const Key c = cur.get(v);
            cur.set(v, std::min(std::max(a, b), std::max(std::min(a, b), c)));
          }
        });
    ++completed;
  }
  out.all_finished = completed >= iterations;
  cur.to_keys(state);
  return out;
}

TwoTournamentOutcome two_tournament(Engine& engine, std::vector<Key>& state,
                                    double phi, double eps,
                                    bool truncate_last) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");
  GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");
  GQ_REQUIRE(engine.failures().never_fails(),
             "two_tournament is the failure-free variant; use "
             "robust_two_tournament under a failure model");

  TwoTournamentOutcome out;
  const auto [side, start] = tournament_side(phi, eps);
  out.side = side;
  out.schedule = two_tournament_schedule(start, eps);
  const bool suppress_high = side == TournamentSide::kSuppressHigh;
  const std::uint64_t bits = key_bits(n);

  SoAKeys cur = SoAKeys::from_keys(state);
  SoAKeys snap(n);
  std::vector<std::uint32_t> first(n);

  for (std::size_t iter = 0; iter < out.schedule.iterations(); ++iter) {
    const double delta = truncate_last ? out.schedule.delta[iter] : 1.0;

    // Round 1: every node pulls its first sample (snapshot fused in).
    engine.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          snap.copy_slice(cur, begin, end);
          for (std::uint32_t v = begin; v < end; ++v) {
            SplitMix64 stream = engine.node_stream(v);
            first[v] = engine.sample_peer(v, stream);
          }
          local.record_messages(end - begin, bits);
        });

    // Round 2: the delta coin and, if it lands, the second sample; the
    // tournament commit reads the immutable snapshot only.
    engine.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            SplitMix64 stream = engine.node_stream(v);
            const bool tournament =
                delta >= 1.0 || rand_bernoulli(stream, delta);
            if (tournament) {
              const std::uint32_t second = engine.sample_peer(v, stream);
              ++sent;
              const Key a = snap.get(first[v]);
              const Key b = snap.get(second);
              cur.set(v, suppress_high ? std::min(a, b) : std::max(a, b));
            } else {
              cur.set(v, snap.get(first[v]));
            }
          }
          local.record_messages(sent, bits);
        });

    ++out.iterations;
  }
  cur.to_keys(state);
  return out;
}

namespace {

const Key& median3(const Key& a, const Key& b, const Key& c) {
  if (a < b) {
    if (b < c) return b;
    return a < c ? c : a;
  }
  if (a < c) return a;
  return b < c ? c : b;
}

}  // namespace

ThreeTournamentOutcome three_tournament(Engine& engine,
                                        std::vector<Key>& state, double eps,
                                        std::uint32_t final_sample_size) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");
  GQ_REQUIRE(final_sample_size >= 1, "final sample size must be positive");
  GQ_REQUIRE(engine.failures().never_fails(),
             "three_tournament is the failure-free variant; use "
             "robust_three_tournament under a failure model");
  const std::uint32_t k_samples = final_sample_size | 1u;  // force odd

  ThreeTournamentOutcome out;
  out.schedule = three_tournament_schedule(eps, n);
  const std::uint64_t bits = key_bits(n);

  SoAKeys cur = SoAKeys::from_keys(state);
  SoAKeys snap(n);
  std::array<std::vector<std::uint32_t>, 3> picks;
  for (auto& p : picks) p.resize(n);

  for (std::size_t iter = 0; iter < out.schedule.iterations(); ++iter) {
    // Three pulls = three rounds; all read the iteration-start snapshot,
    // which the first round's shards copy slice-wise before its barrier.
    for (int pull = 0; pull < 3; ++pull) {
      engine.begin_round();
      engine.parallel_shards(
          [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
            if (pull == 0) snap.copy_slice(cur, begin, end);
            auto& out_picks = picks[static_cast<std::size_t>(pull)];
            for (std::uint32_t v = begin; v < end; ++v) {
              SplitMix64 stream = engine.node_stream(v);
              out_picks[v] = engine.sample_peer(v, stream);
            }
            local.record_messages(end - begin, bits);
            // Fuse the median commit into the last pull round: it reads
            // only the immutable snapshot and the node's own pick slots.
            if (pull == 2) {
              for (std::uint32_t v = begin; v < end; ++v) {
                cur.set(v, median3(snap.get(picks[0][v]), snap.get(picks[1][v]),
                                   snap.get(picks[2][v])));
              }
            }
          });
    }
    ++out.iterations;
  }

  // Final step: every node samples K values and outputs their median.  The
  // tournament state is immutable during these rounds; each node owns its
  // contiguous sample slice.
  std::vector<Key> samples(static_cast<std::size_t>(n) * k_samples);
  for (std::uint32_t j = 0; j < k_samples; ++j) {
    engine.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          for (std::uint32_t v = begin; v < end; ++v) {
            SplitMix64 stream = engine.node_stream(v);
            samples[static_cast<std::size_t>(v) * k_samples + j] =
                cur.get(engine.sample_peer(v, stream));
          }
          local.record_messages(end - begin, bits);
        });
  }
  out.outputs.resize(n);
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) {
          const auto first_sample =
              samples.begin() + static_cast<std::size_t>(v) * k_samples;
          const auto mid = first_sample + k_samples / 2;
          std::nth_element(first_sample, mid, first_sample + k_samples);
          out.outputs[v] = *mid;
        }
      });
  cur.to_keys(state);
  return out;
}

}  // namespace gq
