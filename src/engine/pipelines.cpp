#include "engine/pipelines.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>

#include <atomic>
#include <memory>

#include "agg/push_sum.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/approx_pipeline.hpp"
#include "core/exact_pipeline.hpp"
#include "engine/arena.hpp"
#include "engine/kernels.hpp"
#include "engine/scatter.hpp"
#include "engine/token_store.hpp"
#include "util/prefetch.hpp"
#include "util/require.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

// ---- generic extreme-spreading -------------------------------------------
//
// The batched twin of agg/spread.hpp's spread_best: same target (the global
// best under `less`, found shard-wise in shard order), same per-round fold,
// same convergence checks, so round counts and Metrics match the sequential
// loop exactly.  The per-shard done flags are folded into the round kernel
// so the omniscient all-agree check costs no extra parallel section.
template <typename T, typename Less>
GenericSpreadResult<T> engine_spread_best(Engine& engine,
                                          std::span<const T> init, Less less,
                                          std::uint64_t bits_per_message,
                                          std::uint64_t max_rounds = 0) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(init.size() == n, "one payload per node required");
  if (max_rounds == 0) {
    max_rounds = spread_rounds_cap(n, engine.failures());
  }

  std::vector<T> cur(init.begin(), init.end());
  const std::size_t shards = engine.num_shards();

  // The global best: per-shard first-maximum, combined in shard order —
  // equivalent to std::max_element's first-maximum over the whole range.
  std::vector<T> shard_best(shards);
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        T best = cur[begin];
        for (std::uint32_t v = begin + 1; v < end; ++v) {
          if (less(best, cur[v])) best = cur[v];
        }
        shard_best[engine.shard_of(begin)] = best;
      });
  T target = shard_best[0];
  for (std::size_t s = 1; s < shards; ++s) {
    if (less(target, shard_best[s])) target = shard_best[s];
  }

  const auto equivalent = [&](const T& k) {
    return !less(k, target) && !less(target, k);
  };

  GenericSpreadResult<T> out;
  std::vector<T> next(n);
  std::vector<std::uint8_t> done(shards, 0);
  std::vector<std::uint32_t> peers(n);

  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        std::uint8_t flag = 1;
        for (std::uint32_t v = begin; v < end; ++v) {
          if (!equivalent(cur[v])) {
            flag = 0;
            break;
          }
        }
        done[engine.shard_of(begin)] = flag;
      });
  const auto all_done = [&] {
    return std::all_of(done.begin(), done.end(),
                       [](std::uint8_t f) { return f != 0; });
  };

  for (std::uint64_t r = 0; r < max_rounds; ++r) {
    if (all_done()) {
      out.converged = true;
      break;
    }
    engine.pull_round(bits_per_message, peers);
    ++out.rounds;
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          constexpr std::uint32_t kAhead = 16;
          std::uint8_t flag = 1;
          for (std::uint32_t v = begin; v < end; ++v) {
            // The peer lane is already materialised (pull_round filled it),
            // so a simple lookahead prefetch hides the random gather.
            if (v + kAhead < end) {
              const std::uint32_t ahead = peers[v + kAhead];
              if (ahead != Engine::kNoPeer) prefetch_read(&cur[ahead]);
            }
            const std::uint32_t p = peers[v];
            next[v] = (p != Engine::kNoPeer && less(cur[v], cur[p])) ? cur[p]
                                                                     : cur[v];
            if (!equivalent(next[v])) flag = 0;
          }
          done[engine.shard_of(begin)] = flag;
        });
    cur.swap(next);
  }
  if (!out.converged) out.converged = all_done();
  out.values = std::move(cur);
  return out;
}

// ---- push-sum on the scatter primitive -----------------------------------
//
// The batched twin of push_sum_average_multi: per round, every node halves
// its masses and scatters one message; the scatter delivers each
// destination's incoming masses in ascending sender order, which is the
// exact floating-point fold order of the sequential for-loop.
//
// Working state is engine-pooled (Engine::scratch) and first-touch
// initialized: each shard's slice of the arrays is first written by the
// worker that owns the shard, and the per-destination accumulators by their
// partition's delivery task — so repeated counting stages reuse warm,
// NUMA-local pages instead of re-allocating n-sized vectors per call.
//
// A node's value masses and weight mass live in ONE struct, not parallel
// arrays: the delivery fold makes two random-indexed accesses per message
// (read the sender's pair, bump the destination's accumulator pair), and
// keeping each pair on one cache line instead of two halves the lines the
// L2 has to serve on the hottest loop of the counting stages.
template <std::size_t D>
struct PushSumScratch {
  struct Pair {
    std::array<double, D> s;
    double w;
  };
  FirstTouchBuffer<Pair> state;   // each node's current (s, w)
  FirstTouchBuffer<Pair> inflow;  // accumulated incoming masses
};

template <std::size_t D>
MultiPushSumResult<D> engine_push_sum_average_multi(
    Engine& engine, std::span<const std::array<double, D>> x,
    std::uint64_t rounds) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(x.size() == n, "one input vector per node required");
  if (rounds == 0) rounds = push_sum_rounds_default(n, engine.failures());
  const std::uint64_t bits = push_sum_message_bits(D);

  using Pair = typename PushSumScratch<D>::Pair;
  auto& scratch = engine.scratch<PushSumScratch<D>>();
  scratch.state.ensure(n);
  scratch.inflow.ensure(n);
  const std::span<Pair> state = scratch.state.span(n);
  const std::span<Pair> inflow = scratch.inflow.span(n);
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) {
          state[v].s = x[v];
          state[v].w = 1.0;
        }
      });
  // inflow needs no init: each round's delivery prologue zeroes it, which
  // also first-touches each slice from the partition task that owns it.

  // Two parallel sections per round, not four: the peer draw (the batched
  // twin of push_round — same per-node stream derivation, same per-shard
  // message accounting) is fused with the halve-and-send loop, and the
  // "add the incoming masses" commit rides as the delivery epilogue while
  // the partition's accumulators are cache-resident.  Messages carry the
  // halved (s, w) pair inline — a pure streaming read on delivery — and
  // the fold touches exactly one random-indexed accumulator Pair per
  // message.  The floating-point schedule is the sequential one — halve
  // own pair, accumulate incoming in ascending sender order, add the
  // accumulator once — so results stay bit-identical.
  Scatter<Pair> scatter(engine);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    engine.begin_round();
    scatter.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          auto out = scatter.sender_for(begin);
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (engine.node_fails(v)) {  // failed: keeps whole pair
              ++local.failed_operations;
              continue;
            }
            SplitMix64 stream = engine.node_stream(v);
            const std::uint32_t d = engine.sample_peer(v, stream);
            ++sent;
            for (std::size_t j = 0; j < D; ++j) state[v].s[j] *= 0.5;
            state[v].w *= 0.5;
            out.send(d, state[v]);
          }
          local.record_messages(sent, bits);
        });
    scatter.deliver_prefetch(
        engine,
        [&](std::uint32_t first, std::uint32_t last) {
          for (std::uint32_t v = first; v < last; ++v) {
            inflow[v].s.fill(0.0);
            inflow[v].w = 0.0;
          }
        },
        [&](std::uint32_t dest, const Pair& m) {
          for (std::size_t j = 0; j < D; ++j) inflow[dest].s[j] += m.s[j];
          inflow[dest].w += m.w;
        },
        [&](std::uint32_t first, std::uint32_t last) {
          for (std::uint32_t v = first; v < last; ++v) {
            for (std::size_t j = 0; j < D; ++j) {
              state[v].s[j] += inflow[v].s[j];
            }
            state[v].w += inflow[v].w;
          }
        },
        // The fold's one random-indexed access: the destination's inflow
        // Pair.  Issued a few records ahead by the delivery walk.
        [&](std::uint32_t dest) { prefetch_read(&inflow[dest]); });
  }

  MultiPushSumResult<D> out;
  out.rounds = rounds;
  out.estimates.resize(n);
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) {
          for (std::size_t j = 0; j < D; ++j) {
            out.estimates[v][j] = state[v].s[j] / state[v].w;
          }
        }
      });
  return out;
}

}  // namespace

// ---- batched collectives --------------------------------------------------

SpreadResult spread_min(Engine& engine, std::span<const Key> init,
                        std::uint64_t max_rounds) {
  GenericSpreadResult<Key> g = engine_spread_best(
      engine, init, std::greater<Key>{}, key_bits(engine.size()), max_rounds);
  SpreadResult out;
  out.values = std::move(g.values);
  out.rounds = g.rounds;
  out.converged = g.converged;
  return out;
}

SpreadResult spread_max(Engine& engine, std::span<const Key> init,
                        std::uint64_t max_rounds) {
  GenericSpreadResult<Key> g = engine_spread_best(
      engine, init, std::less<Key>{}, key_bits(engine.size()), max_rounds);
  SpreadResult out;
  out.values = std::move(g.values);
  out.rounds = g.rounds;
  out.converged = g.converged;
  return out;
}

CountResult gossip_count(Engine& engine, const std::vector<bool>& indicator,
                         std::uint64_t rounds) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(indicator.size() == n, "one indicator bit per node required");
  if (rounds == 0) rounds = push_sum_rounds_for_exact(n, engine.failures());

  std::vector<std::array<double, 1>> x(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    x[v][0] = indicator[v] ? 1.0 : 0.0;
  }
  const MultiPushSumResult<1> sum = engine_push_sum_average_multi<1>(
      engine, std::span<const std::array<double, 1>>(x), rounds);

  CountResult out;
  out.rounds = sum.rounds;
  out.counts.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    const double rounded =
        std::round(sum.estimates[v][0] * static_cast<double>(n));
    out.counts[v] = rounded <= 0.0 ? 0 : static_cast<std::uint64_t>(rounded);
  }
  return out;
}

CountResult gossip_rank(Engine& engine, std::span<const Key> keys,
                        const Key& threshold, std::uint64_t rounds) {
  std::vector<bool> indicator(keys.size());
  for (std::size_t v = 0; v < keys.size(); ++v) {
    indicator[v] = keys[v] <= threshold;
  }
  return gossip_count(engine, indicator, rounds);
}

TripleCountResult gossip_count3(Engine& engine,
                                const std::vector<bool>& ind_a,
                                const std::vector<bool>& ind_b,
                                const std::vector<bool>& ind_c,
                                std::uint64_t rounds) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(ind_a.size() == n && ind_b.size() == n && ind_c.size() == n,
             "one indicator bit per node required");
  if (rounds == 0) rounds = push_sum_rounds_for_exact(n, engine.failures());

  std::vector<std::array<double, 3>> x(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    x[v] = {ind_a[v] ? 1.0 : 0.0, ind_b[v] ? 1.0 : 0.0, ind_c[v] ? 1.0 : 0.0};
  }
  const MultiPushSumResult<3> avg = engine_push_sum_average_multi<3>(
      engine, std::span<const std::array<double, 3>>(x), rounds);

  TripleCountResult out;
  out.rounds = avg.rounds;
  out.a.resize(n);
  out.b.resize(n);
  out.c.resize(n);
  const auto to_count = [n](double e) {
    const double rounded = std::round(e * static_cast<double>(n));
    return rounded <= 0.0 ? std::uint64_t{0}
                          : static_cast<std::uint64_t>(rounded);
  };
  for (std::uint32_t v = 0; v < n; ++v) {
    out.a[v] = to_count(avg.estimates[v][0]);
    out.b[v] = to_count(avg.estimates[v][1]);
    out.c[v] = to_count(avg.estimates[v][2]);
  }
  return out;
}

PivotSample sample_uniform_candidate(Engine& engine,
                                     std::span<const Key> inst,
                                     const std::vector<bool>& candidate) {
  using pivot_detail::PriorityKey;
  using pivot_detail::PriorityLess;
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(inst.size() == n && candidate.size() == n,
             "one key and one candidate flag per node required");

  // One local round in which every candidate draws its priority; failed
  // nodes sit this pivot out, which keeps the choice uniform over the
  // participating candidates.
  engine.begin_round();
  std::vector<PriorityKey> pairs(n);
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
        for (std::uint32_t v = begin; v < end; ++v) {
          if (!candidate[v]) continue;
          if (engine.node_fails(v)) {
            ++local.failed_operations;
            continue;
          }
          SplitMix64 stream = engine.node_stream(v);
          pairs[v] = PriorityKey{stream() | 1ull, inst[v]};
        }
      });

  const GenericSpreadResult<PriorityKey> spread = engine_spread_best(
      engine, std::span<const PriorityKey>(pairs), PriorityLess{},
      pivot_detail::priority_key_bits(n));

  PivotSample out;
  out.rounds = 1 + spread.rounds;
  const PriorityKey& winner = spread.values.front();
  if (winner.priority != 0 && spread.converged) {
    out.found = true;
    out.pivot = winner.key;
  }
  return out;
}

namespace {

// Engine-pooled working state of the batched token split: the flat token
// store plus the incrementally maintained counters that replace the
// sequential version's per-round full rescans.  heavy counts track tokens
// with weight > 1 (Phase A's continuation condition), crowded counts track
// nodes holding >= 2 tokens (Phase B's).  Per-shard counters are atomics
// because delivery tasks are partitioned by *destination* range, which
// need not align with shard boundaries; only their sums are observed
// (after a section barrier), so relaxed updates stay deterministic.
struct TokenSplitScratch {
  TokenStore store;
  FirstTouchBuffer<std::uint32_t> heavy_node;  // heavy tokens held per node
  std::unique_ptr<std::atomic<std::int64_t>[]> heavy_shard;
  std::unique_ptr<std::atomic<std::int64_t>[]> crowded_shard;
  std::size_t shard_capacity = 0;

  void ensure_shards(std::size_t shards) {
    if (shards <= shard_capacity) return;
    heavy_shard = std::make_unique<std::atomic<std::int64_t>[]>(shards);
    crowded_shard = std::make_unique<std::atomic<std::int64_t>[]>(shards);
    shard_capacity = shards;
  }
};

}  // namespace

TokenSplitResult token_split_distribute(Engine& engine,
                                        std::span<const Key> inst,
                                        std::uint64_t multiplier,
                                        std::uint64_t tag_base) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(inst.size() == n, "one key per node required");
  GQ_REQUIRE(multiplier >= 1 && std::has_single_bit(multiplier),
             "multiplier must be a power of two");

  std::uint64_t finite = 0;
  for (const Key& k : inst) finite += k.is_finite() ? 1 : 0;
  GQ_REQUIRE(finite >= 1, "token split needs at least one valued node");
  GQ_REQUIRE(multiplier * finite <= 4ull * n / 5 + 1,
             "token count must leave >= n/5 nodes free for scattering");

  const std::size_t shards = engine.num_shards();
  auto& scratch = engine.scratch<TokenSplitScratch>();
  TokenStore& held = scratch.store;
  held.ensure(n);
  scratch.heavy_node.ensure(n);
  scratch.ensure_shards(shards);
  const std::span<std::uint32_t> heavy_node = scratch.heavy_node.span(n);
  const auto heavy_shard = scratch.heavy_shard.get();
  const auto crowded_shard = scratch.crowded_shard.get();
  for (std::size_t s = 0; s < shards; ++s) {
    crowded_shard[s].store(0, std::memory_order_relaxed);
  }

  // Mint one token per valued node, from its owning shard (clear_node also
  // first-touches the node's slots on that worker).  Every minted token is
  // heavy unless the multiplier is already 1.
  const bool mint_heavy = multiplier > 1;
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        std::int64_t heavy = 0;
        for (std::uint32_t v = begin; v < end; ++v) {
          held.clear_node(v);
          heavy_node[v] = 0;
          if (inst[v].is_finite()) {
            held.push_back(v, Token{inst[v], multiplier});
            if (mint_heavy) {
              heavy_node[v] = 1;
              ++heavy;
            }
          }
        }
        heavy_shard[engine.shard_of(begin)].store(
            heavy, std::memory_order_relaxed);
      });

  TokenSplitResult out;
  out.token_count = multiplier * finite;
  const std::uint64_t bits = token_message_bits(n, multiplier);
  const auto log2n = static_cast<std::uint64_t>(
      std::bit_width(static_cast<std::uint64_t>(n)));
  const std::uint64_t round_cap = 64 * log2n + 512;

  const auto counter_total = [shards](const std::atomic<std::int64_t>* arr) {
    std::int64_t total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      total += arr[s].load(std::memory_order_relaxed);
    }
    return total;
  };

  Scatter<Token> scatter(engine);
  // Delivery fold of both phases: append in ascending sender order (the
  // sequential order) and roll the incremental counters forward.  A
  // delivered heavy token raises its destination's heavy counts; a second
  // token on a node makes that node crowded.  The fold's random-indexed
  // lines (the destination's token slots and heavy count) are prefetched a
  // few records ahead by the delivery walk.
  const auto touch_token_dest = [&](std::uint32_t dest) {
    held.prefetch_node(dest);
    prefetch_read(&heavy_node[dest]);
  };
  const auto append_token = [&](std::uint32_t dest, const Token& t) {
    const std::uint32_t before = held.size(dest);
    held.push_back(dest, t);
    if (t.weight > 1) {
      ++heavy_node[dest];
      heavy_shard[engine.shard_of(dest)].fetch_add(1,
                                                  std::memory_order_relaxed);
    }
    if (before == 1) {
      crowded_shard[engine.shard_of(dest)].fetch_add(
          1, std::memory_order_relaxed);
    }
  };

  // Phase A: halve weights.  Each round a node splits at most one of its
  // weight>1 tokens; the pushed half travels to a uniform node.  A failed
  // operation leaves the token whole (the Section-5.2 merge-back).  The
  // continuation condition "any heavy token anywhere" reads the maintained
  // counters — no rescan of n token lists per round — and shards whose
  // heavy count is zero skip their node loop outright (their nodes would
  // all fall through the sequential find-first-heavy check).
  while (true) {
    if (counter_total(heavy_shard) == 0) break;
    if (out.rounds > round_cap) {
      throw std::runtime_error("token splitting did not converge");
    }

    engine.begin_round();
    ++out.rounds;
    scatter.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          const std::size_t sidx = engine.shard_of(begin);
          if (heavy_shard[sidx].load(std::memory_order_relaxed) == 0) return;
          auto out = scatter.sender_for(begin);
          std::uint64_t sent = 0;
          std::int64_t heavy_delta = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (heavy_node[v] == 0) continue;
            if (engine.node_fails(v)) {
              ++local.failed_operations;
              continue;
            }
            SplitMix64 stream = engine.node_stream(v);
            const std::uint32_t dest = engine.sample_peer(v, stream);
            std::uint32_t i = 0;
            while (held.at(v, i).weight <= 1) ++i;  // first heavy token
            Token& tok = held.at(v, i);
            tok.weight /= 2;
            if (tok.weight == 1) {
              --heavy_node[v];
              --heavy_delta;
            }
            out.send(dest, Token{tok.key, tok.weight});
            ++sent;
          }
          heavy_shard[sidx].fetch_add(heavy_delta,
                                      std::memory_order_relaxed);
          local.record_messages(sent, bits);
        });
    scatter.deliver_prefetch(engine, append_token, touch_token_dest);
  }

  // Phase B: scatter weight-1 tokens until every node holds at most one.
  // Same counter treatment: the crowded counts gate the loop and let
  // all-settled shards skip their node loop.
  while (true) {
    if (counter_total(crowded_shard) == 0) break;
    if (out.rounds > 4 * round_cap) {
      throw std::runtime_error("token scattering did not converge");
    }

    engine.begin_round();
    ++out.rounds;
    scatter.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          const std::size_t sidx = engine.shard_of(begin);
          if (crowded_shard[sidx].load(std::memory_order_relaxed) == 0) {
            return;
          }
          auto out = scatter.sender_for(begin);
          std::uint64_t sent = 0;
          std::int64_t crowded_delta = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (held.size(v) < 2) continue;
            if (engine.node_fails(v)) {
              ++local.failed_operations;
              continue;
            }
            SplitMix64 stream = engine.node_stream(v);
            const std::uint32_t dest = engine.sample_peer(v, stream);
            out.send(dest, held.back(v));
            held.pop_back(v);
            if (held.size(v) == 1) --crowded_delta;
            ++sent;
          }
          crowded_shard[sidx].fetch_add(crowded_delta,
                                        std::memory_order_relaxed);
          local.record_messages(sent, bits);
        });
    scatter.deliver_prefetch(engine, append_token, touch_token_dest);
  }

  out.instance.assign(n, Key::infinite());
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) {
          if (held.size(v) == 0) continue;
          const Token& t = held.front(v);
          out.instance[v] = Key{t.key.value, t.key.id, tag_base + v};
        }
      });
  return out;
}

// ---- pipelines ------------------------------------------------------------

namespace {

// The engine instantiation of the shared Algorithm-3 control flow in
// core/exact_pipeline.hpp; the sequential twin lives in
// core/exact_quantile.cpp.
struct EngineExactOps {
  Engine& engine;

  [[nodiscard]] std::uint32_t size() const { return engine.size(); }
  [[nodiscard]] std::uint64_t seed() const { return engine.seed(); }
  [[nodiscard]] std::uint64_t round() const { return engine.round(); }
  [[nodiscard]] const Metrics& metrics() const { return engine.metrics(); }

  ApproxQuantileResult approx(std::span<const Key> keys,
                              const ApproxQuantileParams& params) {
    return approx_quantile_keys(engine, keys, params);
  }
  SpreadResult spread_min_keys(std::span<const Key> init) {
    return spread_min(engine, init);
  }
  SpreadResult spread_max_keys(std::span<const Key> init) {
    return spread_max(engine, init);
  }
  CountResult count(const std::vector<bool>& indicator) {
    return gossip_count(engine, indicator);
  }
  CountResult rank(std::span<const Key> keys, const Key& threshold) {
    return gossip_rank(engine, keys, threshold);
  }
  TripleCountResult count3(const std::vector<bool>& a,
                           const std::vector<bool>& b,
                           const std::vector<bool>& c) {
    return gossip_count3(engine, a, b, c);
  }
  PivotSample pivot(std::span<const Key> inst,
                    const std::vector<bool>& candidate) {
    return sample_uniform_candidate(engine, inst, candidate);
  }
  TokenSplitResult token_split(std::span<const Key> inst,
                               std::uint64_t multiplier,
                               std::uint64_t tag_base) {
    return token_split_distribute(engine, inst, multiplier, tag_base);
  }
  [[nodiscard]] std::uint64_t exact_count_rounds() const {
    return push_sum_rounds_for_exact(engine.size(), engine.failures());
  }
};

// The engine instantiation of the shared approximate-pipeline control flow
// in core/approx_pipeline.hpp; the sequential twin lives in
// core/approx_quantile.cpp.
struct EngineApproxOps {
  Engine& engine;

  [[nodiscard]] std::uint32_t size() const { return engine.size(); }
  [[nodiscard]] const Metrics& metrics() const { return engine.metrics(); }
  [[nodiscard]] bool faultless() const { return engine.faultless(); }

  ExactQuantileResult exact(std::span<const Key> keys,
                            const ExactQuantileParams& params) {
    return exact_quantile_keys(engine, keys, params);
  }
  TwoTournamentOutcome two(std::vector<Key>& state, double phi, double eps,
                           bool truncate_last) {
    return two_tournament(engine, state, phi, eps, truncate_last);
  }
  ThreeTournamentOutcome three(std::vector<Key>& state, double eps,
                               std::uint32_t final_sample_size) {
    return three_tournament(engine, state, eps, final_sample_size);
  }
  RobustTwoTournamentOutcome robust_two(std::vector<Key>& state,
                                        std::vector<bool>& good, double phi,
                                        double eps, bool truncate_last) {
    return robust_two_tournament(engine, state, good, phi, eps,
                                 truncate_last);
  }
  RobustThreeTournamentOutcome robust_three(std::vector<Key>& state,
                                            std::vector<bool>& good,
                                            double eps,
                                            std::uint32_t final_sample_size) {
    return robust_three_tournament(engine, state, good, eps,
                                   final_sample_size);
  }
  std::uint64_t coverage(std::vector<Key>& outputs, std::vector<bool>& valid,
                         std::uint32_t t) {
    return robust_coverage(engine, outputs, valid, t);
  }
};

// The engine instantiation of the shared multi-quantile control flow in
// core/multi_pipeline.hpp; the sequential twin lives in
// core/multi_quantile.cpp.  Thin forwarders to the multi-lane kernels in
// engine/kernels.cpp, plus the single-target approx pipeline for the
// deduped fallback route.
struct EngineMultiOps {
  Engine& engine;

  [[nodiscard]] std::uint32_t size() const { return engine.size(); }
  [[nodiscard]] const Metrics& metrics() const { return engine.metrics(); }
  [[nodiscard]] bool faultless() const { return engine.faultless(); }

  ApproxQuantileResult approx(std::span<const Key> keys,
                              const ApproxQuantileParams& params) {
    return approx_quantile_keys(engine, keys, params);
  }
  void begin(std::span<const Key> keys, std::size_t lanes) {
    multi_tournament_begin(engine, keys, static_cast<std::uint32_t>(lanes));
  }
  void two_iteration(std::span<const MultiLaneStep> steps) {
    multi_two_iteration(engine, steps);
  }
  void three_iteration() { multi_three_iteration(engine); }
  void final_sample(std::uint32_t k_samples,
                    std::vector<std::vector<Key>>& outputs) {
    multi_final_sample(engine, k_samples, outputs);
  }
};

}  // namespace

ApproxQuantileResult approx_quantile_keys(Engine& engine,
                                          std::span<const Key> keys,
                                          const ApproxQuantileParams& params) {
  EngineApproxOps ops{engine};
  return approx_detail::approx_quantile_keys_impl(ops, keys, params);
}

MultiQuantileResult multi_quantile_keys(Engine& engine,
                                        std::span<const Key> keys,
                                        const MultiQuantileParams& params) {
  EngineMultiOps ops{engine};
  return multi_detail::multi_quantile_keys_impl(ops, keys, params);
}

MultiQuantileResult multi_quantile(Engine& engine,
                                   std::span<const double> values,
                                   const MultiQuantileParams& params) {
  const std::vector<Key> keys = make_keys(values);
  return multi_quantile_keys(engine, keys, params);
}

ApproxQuantileResult approx_quantile(Engine& engine,
                                     std::span<const double> values,
                                     const ApproxQuantileParams& params) {
  const std::vector<Key> keys = make_keys(values);
  return approx_quantile_keys(engine, keys, params);
}

ExactQuantileResult exact_quantile_keys(Engine& engine,
                                        std::span<const Key> keys,
                                        const ExactQuantileParams& params) {
  EngineExactOps ops{engine};
  return exact_detail::exact_quantile_keys_impl(ops, keys, params);
}

ExactQuantileResult exact_quantile(Engine& engine,
                                   std::span<const double> values,
                                   const ExactQuantileParams& params) {
  const std::vector<Key> keys = make_keys(values);
  return exact_quantile_keys(engine, keys, params);
}

OwnRankResult own_rank(Engine& engine, std::span<const double> values,
                       const OwnRankParams& params) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(values.size() == n, "one value per node required");
  GQ_REQUIRE(params.eps > 0.0 && params.eps < 0.5,
             "eps must lie in (0, 1/2)");

  const std::vector<Key> keys = make_keys(values);
  const double grid = params.eps / 2.0;
  const auto runs = static_cast<std::size_t>(std::ceil(1.0 / grid)) - 1;

  const Metrics before = engine.metrics();
  OwnRankResult out;
  out.quantile_runs = runs;
  out.valid.assign(n, true);
  std::vector<std::size_t> below(n, 0);

  ApproxQuantileParams ap;
  ap.eps = params.eps / 4.0;
  ap.final_sample_size = params.final_sample_size;
  for (std::size_t j = 1; j <= runs; ++j) {
    ap.phi = std::min(1.0, grid * static_cast<double>(j));
    const ApproxQuantileResult r = approx_quantile_keys(engine, keys, ap);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!r.valid[v]) {
        out.valid[v] = false;
        continue;
      }
      if (r.outputs[v] < keys[v]) ++below[v];
    }
  }

  out.estimates.resize(n);
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) {
          out.estimates[v] =
              std::min(1.0, (static_cast<double>(below[v]) + 0.5) * grid);
        }
      });
  out.rounds = engine.metrics().rounds - before.rounds;
  return out;
}

}  // namespace gq
