// The sharded parallel gossip execution engine.
//
// Engine executes the same synchronous-round model as the sequential
// Network, but shards each round over a fixed thread pool.  It exists to
// push simulations to the paper's analysed scale (n in the millions) while
// keeping every experiment reproducible.
//
// ## Determinism contract
//
// For the same (n, seed, FailureModel) and the same sequence of calls, the
// engine produces **bit-identical transcripts, node states, and Metrics to
// the sequential Network path, at every thread count and shard size**.
// This rests on three properties, each load-bearing:
//
//   1. Counter-based randomness.  Node v's draws in round r are a pure
//      function of (seed, r, v) — see sim/streams.hpp, which both Network
//      and Engine delegate to.  No draw depends on the order in which other
//      nodes are processed, so threads cannot perturb transcripts.
//   2. Disjoint output slots.  Every parallel kernel writes only to node-
//      indexed slots of its own shard (peer arrays, per-node states); no
//      shard writes state another shard reads within the same parallel
//      section.  Reads of shared round-start snapshots are immutable.
//   3. Deterministic metric aggregation.  Each shard accumulates into its
//      own Metrics; after the barrier the shard accumulators are merged in
//      shard order.  Shard boundaries depend only on (n, shard_size) —
//      never on the thread count — and every Metrics field is a sum or max,
//      so the merged totals are exactly the sequential totals.
//
// Anything built on top (the NodeProtocol adapter in runtime_adapter.hpp,
// the batched kernels in kernels.hpp) inherits the contract by only using
// parallel_shards() with per-node slots and per-shard Metrics.
//
// ## API shape
//
// Engine mirrors Network's primitives (begin_round / node_stream /
// node_fails / sample_peer / metrics) so protocol code ports mechanically,
// and adds the batched whole-round kernels pull_round / push_round that
// fill a caller-provided contiguous peer array in parallel — no virtual
// dispatch, no per-node allocation in the hot loop.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "engine/engine_config.hpp"
#include "engine/thread_pool.hpp"
#include "sim/failure_model.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/streams.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace gq {

class Engine {
 public:
  // Same sentinel as the sequential path: "operation failed this round".
  static constexpr std::uint32_t kNoPeer = Network::kNoPeer;

  Engine(std::uint32_t n, std::uint64_t seed,
         FailureModel failures = FailureModel{},
         EngineConfig config = EngineConfig{});

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const FailureModel& failures() const noexcept {
    return failures_;
  }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] unsigned threads() const noexcept { return pool_.threads(); }
  [[nodiscard]] std::size_t num_shards() const noexcept { return num_shards_; }

  // ---- sequential-compatible primitives --------------------------------

  // Starts the next synchronous round and returns its index.
  std::uint64_t begin_round() noexcept {
    ++round_;
    ++metrics_.rounds;
    return round_;
  }

  // Independent random stream for node v in the current round; identical
  // to Network::node_stream for the same (seed, round, v).
  [[nodiscard]] SplitMix64 node_stream(std::uint32_t v) const noexcept {
    return streams::node_stream(seed_, round_, v);
  }

  [[nodiscard]] bool node_fails(std::uint32_t v) const {
    return streams::node_fails(seed_, round_, v, failures_);
  }

  [[nodiscard]] std::uint32_t sample_peer(std::uint32_t v,
                                          SplitMix64& stream) const noexcept {
    return streams::sample_peer(v, n_, stream);
  }

  // Theta(log n)-bit default message budget, as Network::default_message_bits.
  [[nodiscard]] std::uint64_t default_message_bits() const noexcept;

  // ---- sharded execution -----------------------------------------------

  // The extension point every batched kernel is built on: runs
  // fn(begin, end, local) for each shard [begin, end) of the node range,
  // in parallel, then merges the shard-local Metrics in shard order.
  // fn must honour the determinism contract above: write only to
  // node-indexed slots within [begin, end) and account traffic only
  // through `local`.
  using ShardFn =
      std::function<void(std::uint32_t begin, std::uint32_t end, Metrics& local)>;
  void parallel_shards(const ShardFn& fn);

  // The underlying worker pool, for engine subsystems (e.g. the scatter
  // primitive's delivery pass) that parallelise over units other than the
  // node shards.  Callers own their determinism: tasks must write disjoint
  // slots and must not touch the engine's Metrics.
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

  // ---- batched whole-round kernels -------------------------------------

  // One synchronous round in which every node attempts a single pull of a
  // `bits_per_message`-bit message.  peers_out[v] is the contacted peer, or
  // kNoPeer if v's operation failed.  Bit-identical to Network::pull_round.
  void pull_round(std::uint64_t bits_per_message,
                  std::span<std::uint32_t> peers_out);
  [[nodiscard]] std::vector<std::uint32_t> pull_round(
      std::uint64_t bits_per_message);

  // One synchronous round in which every node attempts a single push; the
  // sampler is identical to pull_round (the distinction is which side
  // supplies the message — a protocol concern, not a sampling one).
  void push_round(std::uint64_t bits_per_message,
                  std::span<std::uint32_t> peers_out) {
    pull_round(bits_per_message, peers_out);
  }
  [[nodiscard]] std::vector<std::uint32_t> push_round(
      std::uint64_t bits_per_message) {
    return pull_round(bits_per_message);
  }

 private:
  std::uint32_t n_;
  std::uint64_t seed_;
  FailureModel failures_;
  EngineConfig config_;
  std::uint64_t round_ = 0;
  Metrics metrics_;
  std::size_t num_shards_;
  ThreadPool pool_;
  std::vector<Metrics> shard_scratch_;  // one accumulator per shard
};

}  // namespace gq
