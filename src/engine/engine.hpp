// The sharded parallel gossip execution engine.
//
// Engine executes the same synchronous-round model as the sequential
// Network, but shards each round over a fixed thread pool.  It exists to
// push simulations to the paper's analysed scale (n in the millions) while
// keeping every experiment reproducible.
//
// ## Determinism contract
//
// For the same (n, seed, FailureModel) and the same sequence of calls, the
// engine produces **bit-identical transcripts, node states, and Metrics to
// the sequential Network path, at every thread count and shard size**.
// This rests on three properties, each load-bearing:
//
//   1. Counter-based randomness.  Node v's draws in round r are a pure
//      function of (seed, r, v) — see sim/streams.hpp, which both Network
//      and Engine delegate to.  No draw depends on the order in which other
//      nodes are processed, so threads cannot perturb transcripts.
//   2. Disjoint output slots.  Every parallel kernel writes only to node-
//      indexed slots of its own shard (peer arrays, per-node states); no
//      shard writes state another shard reads within the same parallel
//      section.  Reads of shared round-start snapshots are immutable.
//   3. Deterministic metric aggregation.  Each shard accumulates into its
//      own Metrics; after the barrier the shard accumulators are merged in
//      shard order.  Shard boundaries depend only on (n, shard_size) —
//      never on the thread count — and every Metrics field is a sum or max,
//      so the merged totals are exactly the sequential totals.
//
// Anything built on top (the NodeProtocol adapter in runtime_adapter.hpp,
// the batched kernels in kernels.hpp) inherits the contract by only using
// parallel_shards() with per-node slots and per-shard Metrics.
//
// ## API shape
//
// Engine mirrors Network's primitives (begin_round / node_stream /
// node_fails / sample_peer / metrics) so protocol code ports mechanically,
// and adds the batched whole-round kernels pull_round / push_round that
// fill a caller-provided contiguous peer array in parallel — no virtual
// dispatch, no per-node allocation in the hot loop.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <typeindex>
#include <utility>
#include <vector>

#include "engine/arena.hpp"
#include "engine/engine_config.hpp"
#include "engine/thread_pool.hpp"
#include "sim/failure_model.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/streams.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace gq {

class Engine {
 public:
  // Same sentinel as the sequential path: "operation failed this round".
  static constexpr std::uint32_t kNoPeer = Network::kNoPeer;

  Engine(std::uint32_t n, std::uint64_t seed,
         FailureModel failures = FailureModel{},
         EngineConfig config = EngineConfig{});

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const FailureModel& failures() const noexcept {
    return failures_;
  }

  // ---- adversarial fault injection -------------------------------------
  // Mirrors Network::set_adversary exactly (see sim/network.hpp for the
  // contract): the strategy is borrowed, bound to (seed, n), and an
  // oblivious strategy's drop model is absorbed into the failure model so
  // FailureModel stays the exact special case on this executor too.
  void set_adversary(AdversaryStrategy* adversary) {
    adversary_ = adversary;
    if (adversary_ != nullptr) {
      adversary_->bind(seed_, n_);
      if (const FailureModel* fm = adversary_->oblivious_model();
          fm != nullptr && failures_.never_fails()) {
        failures_ = *fm;
      }
    }
  }
  [[nodiscard]] AdversaryStrategy* adversary() const noexcept {
    return adversary_;
  }
  [[nodiscard]] bool faultless() const noexcept {
    return failures_.never_fails() && adversary_ == nullptr;
  }

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] unsigned threads() const noexcept { return pool_.threads(); }
  [[nodiscard]] std::size_t num_shards() const noexcept { return num_shards_; }

  // Index of the shard owning `node` (equivalently: whose range starts at a
  // parallel_shards callback's `begin`).  Shard geometry lives in exactly
  // one place so the kernels cannot drift from the dispatch layout.
  [[nodiscard]] std::size_t shard_of(std::uint32_t node) const noexcept {
    return node / config_.shard_size;
  }

  // Tuned default for EngineConfig::gather_block (see README "Performance"
  // and the GQ_BENCH_BLOCK sweep in the engine benches).  Large enough to
  // put hundreds of independent prefetches in flight per block, small
  // enough that a block's index lanes stay L1/L2-resident.
  static constexpr std::uint32_t kDefaultGatherBlock = 512;

  // Resolved gather block size for the batched kernels (config value, or
  // the tuned default when the config leaves it 0).  Purely a performance
  // knob: results and Metrics are identical at every value.
  [[nodiscard]] std::uint32_t gather_block() const noexcept {
    return config_.gather_block != 0 ? config_.gather_block
                                     : kDefaultGatherBlock;
  }

  // Tuned default for EngineConfig::intern_min_nodes: at 2^16 nodes the
  // Key-typed state (~1.5 MB) outgrows the private caches, which is where
  // the interned rank lanes start paying for their sort.
  static constexpr std::uint32_t kDefaultInternMinNodes = 1u << 16;

  [[nodiscard]] std::uint32_t intern_min_nodes() const noexcept {
    return config_.intern_min_nodes != 0 ? config_.intern_min_nodes
                                         : kDefaultInternMinNodes;
  }

  // ---- sequential-compatible primitives --------------------------------

  // Starts the next synchronous round and returns its index.
  std::uint64_t begin_round() noexcept {
    ++round_;
    ++metrics_.rounds;
    return round_;
  }

  // Independent random stream for node v in the current round; identical
  // to Network::node_stream for the same (seed, round, v).
  [[nodiscard]] SplitMix64 node_stream(std::uint32_t v) const noexcept {
    return streams::node_stream(seed_, round_, v);
  }

  // With an adversary installed, kDrop/kDelay/kCrash faults read as failed
  // operations here, exactly as on Network (see sim/network.hpp).
  [[nodiscard]] bool node_fails(std::uint32_t v) const {
    return op_fails(v, round_);
  }

  // Explicit-round variant for fused multi-round kernels that advance the
  // round counter before running their node loops.
  [[nodiscard]] bool op_fails(std::uint32_t v, std::uint64_t round) const {
    if (streams::node_fails(seed_, round, v, failures_)) return true;
    if (adversary_ == nullptr) return false;
    const Fault f = adversary_->fault(v, round);
    return f.kind == FaultKind::kDrop || f.kind == FaultKind::kDelay ||
           f.kind == FaultKind::kCrash;
  }

  [[nodiscard]] std::uint32_t sample_peer(std::uint32_t v,
                                          SplitMix64& stream) const noexcept {
    return streams::sample_peer(v, n_, stream);
  }

  // Theta(log n)-bit default message budget, as Network::default_message_bits.
  [[nodiscard]] std::uint64_t default_message_bits() const noexcept;

  // Session reuse hook for long-lived callers (src/service/): rebases the
  // deterministic randomness onto a fresh (seed, round = 0) stream.  Because
  // every draw is a pure function of (seed, round, node), a warm engine
  // re-runs any pipeline after reset_stream(s) **bit-identically** to a cold
  // Engine(n, s) — while the thread pool, scatter arena, and pooled scratch
  // (all observationally neutral) stay warm, which is the point of keeping
  // the engine alive between queries.  Metrics keep accumulating across
  // resets (service-lifetime accounting); callers wanting per-query deltas
  // snapshot metrics() around the call.
  void reset_stream(std::uint64_t seed) {
    seed_ = seed;
    round_ = 0;
    // Re-bind so strategy randomness rebases with the stream (bind may
    // allocate, hence no noexcept).
    if (adversary_ != nullptr) adversary_->bind(seed_, n_);
  }

  // ---- sharded execution -----------------------------------------------

  // The extension point every batched kernel is built on: runs
  // fn(begin, end, local) for each shard [begin, end) of the node range,
  // in parallel, then merges the shard-local Metrics in shard order.
  // fn must honour the determinism contract above: write only to
  // node-indexed slots within [begin, end) and account traffic only
  // through `local`.  The callable is borrowed, never wrapped in a
  // std::function — one parallel section costs zero heap allocations once
  // the shard accumulators' size tables have warmed up.
  template <typename Fn>
  void parallel_shards(Fn&& fn) {
    GQ_SPAN("engine/parallel_shards");
    const std::uint32_t shard_size = config_.shard_size;
    auto shard_task = [&](std::size_t s) {
      const std::uint32_t begin =
          static_cast<std::uint32_t>(s * static_cast<std::size_t>(shard_size));
      const std::uint32_t end =
          s + 1 == num_shards_
              ? n_
              : static_cast<std::uint32_t>(
                    (s + 1) * static_cast<std::size_t>(shard_size));
      Metrics& local = shard_scratch_[s];
      local.reset();
      fn(begin, end, local);
    };
    pool_.run(num_shards_, shard_task);
    // Deterministic aggregation: shard order is fixed by (n, shard_size),
    // independent of which thread ran which shard.  Shards that recorded
    // nothing are skipped — merging zeros is a no-op, so the skip is
    // observationally neutral and keeps per-section accounting proportional
    // to the shards that actually billed traffic.
    for (const Metrics& local : shard_scratch_) {
      if (!local.empty()) metrics_.merge(local);
    }
  }

  // The underlying worker pool, for engine subsystems (e.g. the scatter
  // primitive's delivery pass) that parallelise over units other than the
  // node shards.  Callers own their determinism: tasks must write disjoint
  // slots and must not touch the engine's Metrics.
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

  // The engine-owned mailbox arena; Scatter/CombiningScatter check their
  // rows x partitions box table out of it so mailbox capacity persists
  // across rounds and pipeline stages.  See engine/arena.hpp.
  [[nodiscard]] ScatterArena& scatter_arena() noexcept {
    return scatter_arena_;
  }

  // Engine-pooled working storage for collectives: one default-constructed
  // T per (engine, type), created on first use and reused afterwards so a
  // collective's scratch (e.g. the token split's per-node token store)
  // keeps its capacity across calls.  Call from the orchestrating thread
  // only, never from inside a parallel section; reentrancy discipline is
  // the caller's (collectives on one engine run sequentially).
  template <typename T>
  [[nodiscard]] T& scratch() {
    const std::type_index key(typeid(T));
    for (auto& [type, ptr] : scratch_) {
      if (type == key) return *static_cast<T*>(ptr.get());
    }
    scratch_.emplace_back(
        key, std::unique_ptr<void, void (*)(void*)>(
                 new T(), [](void* p) { delete static_cast<T*>(p); }));
    return *static_cast<T*>(scratch_.back().second.get());
  }

  // ---- batched whole-round kernels -------------------------------------

  // One synchronous round in which every node attempts a single pull of a
  // `bits_per_message`-bit message.  peers_out[v] is the contacted peer, or
  // kNoPeer if v's operation failed.  Bit-identical to Network::pull_round.
  void pull_round(std::uint64_t bits_per_message,
                  std::span<std::uint32_t> peers_out);
  [[nodiscard]] std::vector<std::uint32_t> pull_round(
      std::uint64_t bits_per_message);

  // One synchronous round in which every node attempts a single push; the
  // sampler is identical to pull_round (the distinction is which side
  // supplies the message — a protocol concern, not a sampling one).
  void push_round(std::uint64_t bits_per_message,
                  std::span<std::uint32_t> peers_out) {
    pull_round(bits_per_message, peers_out);
  }
  [[nodiscard]] std::vector<std::uint32_t> push_round(
      std::uint64_t bits_per_message) {
    return pull_round(bits_per_message);
  }

 private:
  std::uint32_t n_;
  std::uint64_t seed_;
  FailureModel failures_;
  AdversaryStrategy* adversary_ = nullptr;  // borrowed; see set_adversary
  EngineConfig config_;
  std::uint64_t round_ = 0;
  Metrics metrics_;
  std::size_t num_shards_;
  ThreadPool pool_;
  std::vector<Metrics> shard_scratch_;  // one accumulator per shard
  ScatterArena scatter_arena_;
  std::vector<std::pair<std::type_index, std::unique_ptr<void, void (*)(void*)>>>
      scratch_;  // per-type pooled collective storage
};

}  // namespace gq
