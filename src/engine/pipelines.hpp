// Engine-native quantile pipelines: the headline algorithms of the paper —
// approx_quantile (Theorem 2.1 / 1.2) and exact_quantile (Theorem 1.1) —
// running end-to-end on the sharded parallel Engine, plus the batched
// gossip collectives they are built from.
//
// Every function here is an overload of its sequential namesake taking
// Engine& instead of Network&, returns the same result struct, and is
// **bit-identical** to the sequential path — same outputs, same round
// counts, same Metrics — at every thread count and shard size (pinned by
// tests/test_engine.cpp).  Porting a caller is a one-line change of the
// executor type; see examples/quickstart.cpp.
//
// How bit-identity survives the push patterns: the pull-shaped collectives
// (spreads, tournaments) parallelise with per-node output slots as before,
// while the push-shaped ones — push-sum counting and the Step-7 token
// split — route their traffic through engine/scatter.hpp, which applies
// payloads to each destination in ascending sender order, exactly the
// order the sequential for-loop produces.  The exact pipeline's control
// flow itself is not duplicated: both executors instantiate the shared
// template in core/exact_pipeline.hpp.
//
// Scope: both the failure-free and the Section-5 failure model.  The
// batched collectives below (spread, count, pivot, token split) honour
// FailureModel directly, and under a failure model the pipelines route
// through the engine-native robust kernels (engine/kernels.hpp:
// robust_two_tournament / robust_three_tournament / robust_coverage, which
// share the schedule control flow with core/robust.cpp via
// core/robust_pipeline.hpp) — so adversarial sweeps run at n = 10^7 with
// the same bit-identity guarantee, pinned by tests/test_engine_robust.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "agg/rank_count.hpp"
#include "agg/spread.hpp"
#include "core/adversarial_pipeline.hpp"
#include "core/multi_quantile.hpp"
#include "core/params.hpp"
#include "core/pivot.hpp"
#include "core/result.hpp"
#include "core/token_split.hpp"
#include "engine/engine.hpp"
#include "sim/key.hpp"

namespace gq {

// ---- batched collectives --------------------------------------------------

// Min-/max-broadcast over uniform gossip; see agg/spread.hpp.
[[nodiscard]] SpreadResult spread_min(Engine& engine,
                                      std::span<const Key> init,
                                      std::uint64_t max_rounds = 0);
[[nodiscard]] SpreadResult spread_max(Engine& engine,
                                      std::span<const Key> init,
                                      std::uint64_t max_rounds = 0);

// Exact push-sum counting; see agg/rank_count.hpp.
[[nodiscard]] CountResult gossip_count(Engine& engine,
                                       const std::vector<bool>& indicator,
                                       std::uint64_t rounds = 0);
[[nodiscard]] CountResult gossip_rank(Engine& engine,
                                      std::span<const Key> keys,
                                      const Key& threshold,
                                      std::uint64_t rounds = 0);
[[nodiscard]] TripleCountResult gossip_count3(
    Engine& engine, const std::vector<bool>& ind_a,
    const std::vector<bool>& ind_b, const std::vector<bool>& ind_c,
    std::uint64_t rounds = 0);

// Uniform pivot sampling; see core/pivot.hpp.
[[nodiscard]] PivotSample sample_uniform_candidate(
    Engine& engine, std::span<const Key> inst,
    const std::vector<bool>& candidate);

// Token split-and-distribute (Algorithm 3 Step 7) on the scatter
// primitive; see core/token_split.hpp.
[[nodiscard]] TokenSplitResult token_split_distribute(
    Engine& engine, std::span<const Key> inst, std::uint64_t multiplier,
    std::uint64_t tag_base);

// ---- pipelines ------------------------------------------------------------

// The eps-approximate phi-quantile pipeline; see core/approx_quantile.hpp.
// Under a FailureModel the robust Section-5 variants run, and the result's
// `valid` mask reports which nodes were served.
[[nodiscard]] ApproxQuantileResult approx_quantile(
    Engine& engine, std::span<const double> values,
    const ApproxQuantileParams& params);
[[nodiscard]] ApproxQuantileResult approx_quantile_keys(
    Engine& engine, std::span<const Key> keys,
    const ApproxQuantileParams& params);

// Corollary 1.5, all q targets in ONE shared tournament schedule; see
// core/multi_quantile.hpp and core/multi_pipeline.hpp.  Bit-identical to
// the sequential multi_quantile at every thread count
// (tests/test_engine_multi.cpp).
[[nodiscard]] MultiQuantileResult multi_quantile(
    Engine& engine, std::span<const double> values,
    const MultiQuantileParams& params);
[[nodiscard]] MultiQuantileResult multi_quantile_keys(
    Engine& engine, std::span<const Key> keys,
    const MultiQuantileParams& params);

// Algorithm 3, exact phi-quantile; see core/exact_quantile.hpp.
[[nodiscard]] ExactQuantileResult exact_quantile(
    Engine& engine, std::span<const double> values,
    const ExactQuantileParams& params);
[[nodiscard]] ExactQuantileResult exact_quantile_keys(
    Engine& engine, std::span<const Key> keys,
    const ExactQuantileParams& params);

// Corollary 1.5, own-rank estimation; see core/own_rank.hpp.
[[nodiscard]] OwnRankResult own_rank(Engine& engine,
                                     std::span<const double> values,
                                     const OwnRankParams& params);

// The adversarially-robust pipelines (arXiv 2502.15320); see
// core/adversarial.hpp for the model and core/adversarial_pipeline.hpp for
// the shared control flow.  Install a strategy with Engine::set_adversary.
// These kernels run on plain pooled Key buffers, never the interned rank
// lanes — corrupt payloads are values the intern table has never seen.
[[nodiscard]] AdversarialQuantileResult adversarial_quantile(
    Engine& engine, std::span<const double> values,
    const AdversarialQuantileParams& params = {});
[[nodiscard]] AdversarialQuantileResult adversarial_quantile_keys(
    Engine& engine, std::span<const Key> keys,
    const AdversarialQuantileParams& params = {});
[[nodiscard]] AdversarialMeanResult adversarial_mean(
    Engine& engine, std::span<const double> values,
    const AdversarialMeanParams& params = {});

}  // namespace gq
