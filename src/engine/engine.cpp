#include "engine/engine.hpp"

#include "sim/key.hpp"

namespace gq {

Engine::Engine(std::uint32_t n, std::uint64_t seed, FailureModel failures,
               EngineConfig config)
    : n_(n),
      seed_(seed),
      failures_(std::move(failures)),
      config_(config),
      num_shards_((config.shard_size == 0
                       ? 1
                       : (static_cast<std::size_t>(n) + config.shard_size - 1) /
                             config.shard_size)),
      pool_(config.threads, config.pin_workers) {
  GQ_REQUIRE(n >= 2, "a gossip network needs at least two nodes");
  GQ_REQUIRE(config.shard_size > 0, "shard size must be positive");
  shard_scratch_.resize(num_shards_);
}

void Engine::pull_round(std::uint64_t bits_per_message,
                        std::span<std::uint32_t> peers_out) {
  GQ_REQUIRE(peers_out.size() == n_, "peer output array must have one slot per node");
  GQ_SPAN("engine/pull_round");
  begin_round();
  parallel_shards([&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
    std::uint64_t sent = 0;
    for (std::uint32_t v = begin; v < end; ++v) {
      if (node_fails(v)) {
        ++local.failed_operations;
        peers_out[v] = kNoPeer;
        continue;
      }
      SplitMix64 stream = node_stream(v);
      peers_out[v] = sample_peer(v, stream);
      ++sent;
    }
    local.record_messages(sent, bits_per_message);
  });
}

std::vector<std::uint32_t> Engine::pull_round(std::uint64_t bits_per_message) {
  std::vector<std::uint32_t> peers(n_, kNoPeer);
  pull_round(bits_per_message, peers);
  return peers;
}

std::uint64_t Engine::default_message_bits() const noexcept {
  return gq::default_message_bits(n_);
}

}  // namespace gq
