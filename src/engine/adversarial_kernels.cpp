// Engine instantiation of the adversarially-robust pipelines
// (core/adversarial_pipeline.hpp): the per-node folds run inside
// parallel_shards with shard-local Metrics, which the engine merges in
// shard order — the same fragments, folded in the same node order, as the
// sequential NetworkAdversarialOps (core/adversarial.cpp) produces, so the
// two executors are bit-identical at every thread count (pinned by
// tests/test_adversary.cpp).
//
// Deliberately NOT on the interned rank lanes of engine/kernels.cpp: a
// corrupt fault injects an arbitrary payload the intern table has never
// seen, so the adversarial kernels work on plain Key buffers.  The per-node
// scratch (filter groups, delay mailbox) is fixed-capacity stack storage
// inside the fold — no pooled state, no allocation inside the parallel
// sections.
#include <cstdint>
#include <span>

#include "core/adversarial_pipeline.hpp"
#include "engine/engine.hpp"
#include "engine/pipelines.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

struct EngineAdversarialOps {
  Engine& engine;

  [[nodiscard]] std::uint32_t size() const { return engine.size(); }
  [[nodiscard]] std::uint64_t seed() const { return engine.seed(); }
  [[nodiscard]] const FailureModel& failures() const {
    return engine.failures();
  }
  [[nodiscard]] AdversaryStrategy* adversary() const {
    return engine.adversary();
  }
  [[nodiscard]] const Metrics& metrics() const { return engine.metrics(); }
  [[nodiscard]] std::uint64_t round() const { return engine.round(); }

  void advance_rounds(std::uint32_t k) {
    for (std::uint32_t i = 0; i < k; ++i) (void)engine.begin_round();
  }

  template <typename Fn>
  void for_each_node(Fn&& fn) {
    engine.parallel_shards(
        [&fn](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          for (std::uint32_t v = begin; v < end; ++v) fn(v, local);
        });
  }

  AdversarialQuantileResult quantile(std::span<const Key> keys,
                                     const AdversarialQuantileParams& params) {
    return adversarial_quantile_keys(engine, keys, params);
  }
};

}  // namespace

AdversarialQuantileResult adversarial_quantile_keys(
    Engine& engine, std::span<const Key> keys,
    const AdversarialQuantileParams& params) {
  EngineAdversarialOps ops{engine};
  return adversary_detail::adversarial_quantile_impl(ops, keys, params);
}

AdversarialQuantileResult adversarial_quantile(
    Engine& engine, std::span<const double> values,
    const AdversarialQuantileParams& params) {
  const auto keys = make_keys(values);
  return adversarial_quantile_keys(engine, keys, params);
}

AdversarialMeanResult adversarial_mean(Engine& engine,
                                       std::span<const double> values,
                                       const AdversarialMeanParams& params) {
  const auto keys = make_keys(values);
  EngineAdversarialOps ops{engine};
  return adversary_detail::adversarial_mean_impl(ops, values, keys, params);
}

}  // namespace gq
