// Per-engine mailbox arena for the scatter primitive.
//
// Every push-shaped collective (push-sum counting, pivot spreading, the
// Step-7 token split) routes its traffic through a Scatter, and before this
// arena existed each collective constructed its own rows x partitions
// mailbox table and re-grew every mailbox from zero — in a long
// exact_quantile run that is thousands of throwaway vector growths.  The
// arena gives the Engine ownership of one mailbox table that collectives
// check out and return: byte capacity reached in round r is still there in
// round r+1000 and in the next pipeline stage, so steady-state rounds
// perform zero heap allocations in the scatter path.
//
// Boxes store raw bytes rather than typed records so the same capacity is
// reused across payload types (a push-sum Mass round followed by a Token
// round reuses the same slabs).  Scatter<Payload> imposes the record
// framing; payloads must be trivially copyable, which every gossip payload
// is (they model wire messages).
//
// NUMA note: a mailbox row is written by exactly one sender shard, and
// growth happens inside that shard's send loop — so the pages of a row's
// slab are first touched by the worker that owns the row, which is the
// first-touch placement a NUMA allocator wants.  Delivery reads cross
// rows, but reads are the cheap direction.
//
// Checkout is exclusive: one collective at a time (they run sequentially
// inside a pipeline).  A nested Scatter — not something the pipelines do
// today — receives nullptr from acquire() and falls back to private
// storage, so nesting degrades to the old behaviour instead of corrupting
// the arena.
//
// The growth counters exist for the allocation-freeness tests: after a
// warmup run, a bit-identical rerun must leave grow_events() unchanged.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace gq {

// Uninitialized pooled buffer for trivially-default-constructible elements.
// Unlike std::vector, ensure() does not write the pages, so the first write
// — from the owning shard's worker inside a parallel section — is what maps
// them, landing each shard's slice on that worker's NUMA node (first-touch
// placement).  Pool instances via Engine::scratch so capacity persists
// across collective calls.  Callers must write before reading, which the
// engine kernels do by construction (every slot is (re)initialized each
// call or each round).
template <typename T>
class FirstTouchBuffer {
  static_assert(std::is_trivially_default_constructible_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "first-touch storage must not require construction, or the "
                "constructor itself would touch the pages sequentially");

 public:
  void ensure(std::size_t n) {
    if (n <= capacity_) return;
    data_ = std::make_unique_for_overwrite<T[]>(n);
    capacity_ = n;
  }

  [[nodiscard]] T* data() noexcept { return data_.get(); }
  [[nodiscard]] std::span<T> span(std::size_t n) noexcept {
    return {data_.get(), n};
  }

 private:
  std::unique_ptr<T[]> data_;
  std::size_t capacity_ = 0;
};

class ScatterArena {
 public:
  struct Box {
    std::vector<std::byte> bytes;  // capacity slab; size() is the capacity
    std::size_t used = 0;          // bytes holding live records
  };

  // Claims `count` boxes with `used` reset and capacity preserved, or
  // returns nullptr when the arena is already checked out.  The pointer is
  // valid until release(); the box table never moves mid-checkout.
  [[nodiscard]] Box* acquire(std::size_t count) {
    if (in_use_) return nullptr;
    if (boxes_.size() < count) boxes_.resize(count);
    for (std::size_t i = 0; i < count; ++i) boxes_[i].used = 0;
    in_use_ = true;
    return boxes_.data();
  }

  void release() noexcept { in_use_ = false; }

  // Geometric growth policy, shared with Scatter's non-arena fallback.
  // The floor is deliberately small: a mailbox table can hold thousands of
  // boxes, and over-sized floors fragment the delivery read path across
  // mostly-empty pages; doubling reaches any realistic box volume in a few
  // warmup rounds.
  [[nodiscard]] static std::size_t next_capacity(const Box& box,
                                                 std::size_t min_bytes) {
    const std::size_t doubled = box.bytes.size() * 2;
    const std::size_t floor = std::size_t{1} << 8;
    return std::max(min_bytes, std::max(doubled, floor));
  }

  // Grows `box` to hold at least `min_bytes`.  Called concurrently for
  // *different* boxes (each row has one writer), hence the atomic stats.
  void grow(Box& box, std::size_t min_bytes) {
    const std::size_t cap = next_capacity(box, min_bytes);
    reserved_bytes_.fetch_add(cap - box.bytes.size(),
                              std::memory_order_relaxed);
    grow_events_.fetch_add(1, std::memory_order_relaxed);
    box.bytes.resize(cap);
  }

  // ---- instrumentation --------------------------------------------------

  // Number of box growths since construction.  Steady state is defined by
  // this standing still: rerunning an identical workload on a warmed-up
  // engine must not move it.
  [[nodiscard]] std::uint64_t grow_events() const noexcept {
    return grow_events_.load(std::memory_order_relaxed);
  }

  // Total bytes of mailbox capacity currently reserved.
  [[nodiscard]] std::uint64_t reserved_bytes() const noexcept {
    return reserved_bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Box> boxes_;
  bool in_use_ = false;
  std::atomic<std::uint64_t> grow_events_{0};
  std::atomic<std::uint64_t> reserved_bytes_{0};
};

}  // namespace gq
