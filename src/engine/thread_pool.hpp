// A fixed pool of worker threads executing indexed task batches.
//
// ThreadPool::run(num_tasks, fn) calls fn(i) exactly once for every
// i in [0, num_tasks), distributing indices over the workers plus the
// calling thread, and returns only when all calls have completed (a full
// barrier).  Which thread executes which index is unspecified — callers
// must make fn(i) independent of execution order; the engine guarantees
// this by deriving all randomness from counter-based streams and giving
// every task its own output slots.
//
// The pool is created once and reused for every round, so the per-round
// dispatch cost is two condition-variable hops, not thread creation.  With
// one thread the pool spawns no workers and run() executes inline, making
// the single-threaded engine an ordinary sequential loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gq {

class ThreadPool {
 public:
  // `threads` >= 1 is the total parallelism including the calling thread;
  // 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  // Executes task(i) for every i in [0, num_tasks); returns after all
  // complete.  Not reentrant: run() must not be called from within a task.
  // If a task throws, the batch still drains (remaining indices may or may
  // not run), the pool stays usable, and the first exception is rethrown
  // from run() on the calling thread — matching the sequential path's
  // propagation semantics.
  void run(std::size_t num_tasks, const std::function<void(std::size_t)>& task);

 private:
  void worker_loop();
  void drain_batch();

  unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // wakes workers for a new batch
  std::condition_variable done_cv_;   // wakes run() when a batch finishes
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t num_tasks_ = 0;
  std::size_t next_task_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t generation_ = 0;        // batch sequence number
  std::exception_ptr batch_error_;      // first exception thrown by a task
  bool stop_ = false;
};

}  // namespace gq
