// A fixed pool of worker threads executing indexed task batches.
//
// ThreadPool::run(num_tasks, fn) calls fn(i) exactly once for every
// i in [0, num_tasks), distributing indices over the workers plus the
// calling thread, and returns only when all calls have completed (a full
// barrier).  Which thread executes which index is unspecified — callers
// must make fn(i) independent of execution order; the engine guarantees
// this by deriving all randomness from counter-based streams and giving
// every task its own output slots.
//
// The dispatch path is contention-free and allocation-free: indices are
// claimed in chunks with one atomic claim per chunk (no per-index
// locking), completion is an atomic counter whose final increment triggers
// the single end-of-batch wakeup, and the callable travels as a raw
// function pointer plus context pointer — no std::function is constructed,
// so a round's dispatch performs zero heap allocations.  The claim word
// packs {epoch, next index} so a worker that slept through the end of a
// batch is fenced out by the epoch check instead of being waited for —
// run() returns the moment the last task completes, never blocking on
// late-waking workers.  The pool mutex is touched only at batch boundaries
// (publish, worker wake) and on the exceptional path.
//
// The pool is created once and reused for every round, so the per-round
// dispatch cost is two condition-variable hops, not thread creation.  With
// one thread the pool spawns no workers and run() executes inline, making
// the single-threaded engine an ordinary sequential loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace gq {

class ThreadPool {
 public:
  // The type-erased task shape: fn(ctx, i) runs task index i.
  using RawTask = void (*)(void* ctx, std::size_t index);

  // `threads` >= 1 is the total parallelism including the calling thread;
  // 0 picks std::thread::hardware_concurrency().  With `pin_workers` each
  // spawned worker is pinned to one core of the process's allowed CPU set
  // (taskset/cgroup masks respected) — workers cycle over the allowed
  // cores beyond the first, leaving that first core to the unpinned
  // calling thread — so first-touch page placement survives scheduler
  // migration.  Platforms
  // without an affinity API warn once and proceed unpinned; the calling
  // thread is never pinned (it belongs to the application, not the pool).
  explicit ThreadPool(unsigned threads, bool pin_workers = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  // Executes task(i) for every i in [0, num_tasks); returns after all
  // complete.  Not reentrant: run() must not be called from within a task.
  // If a task throws, the batch still drains (remaining indices may or may
  // not run), the pool stays usable, and the first exception is rethrown
  // from run() on the calling thread — matching the sequential path's
  // propagation semantics.  The callable is borrowed for the duration of
  // the call, never copied — no allocation happens on this path.
  template <typename F>
  void run(std::size_t num_tasks, F&& task) {
    using Fn = std::remove_reference_t<F>;
    run_raw(num_tasks,
            [](void* ctx, std::size_t i) { (*static_cast<Fn*>(ctx))(i); },
            const_cast<void*>(
                static_cast<const void*>(std::addressof(task))));
  }

  // The non-templated core run() wraps.
  void run_raw(std::size_t num_tasks, RawTask task, void* ctx);

 private:
  // The published batch descriptor.  Written under mutex_ by run_raw;
  // workers copy it under mutex_ when they wake, so a worker can never
  // observe a torn descriptor even if it sleeps through a whole batch.
  struct Batch {
    RawTask task = nullptr;
    void* ctx = nullptr;
    std::size_t num_tasks = 0;
    std::size_t chunk = 1;
    std::uint64_t generation = 0;
  };

  // The claim word: low bits are the next unclaimed index, high bits the
  // batch epoch (generation mod 2^32).  A drainer claims a chunk with one
  // compare-exchange that only succeeds while the epoch still matches its
  // descriptor, which is what lets run() ignore stale workers entirely.
  static constexpr unsigned kIndexBits = 32;
  static constexpr std::uint64_t kIndexMask =
      (std::uint64_t{1} << kIndexBits) - 1;
  [[nodiscard]] static constexpr std::uint64_t pack(
      std::uint64_t generation, std::size_t index) noexcept {
    return (generation << kIndexBits) | index;
  }

  void worker_loop(unsigned worker);
  void drain(const Batch& batch, unsigned worker);

  unsigned threads_;
  std::vector<std::thread> workers_;

  // Worker telemetry: per-worker busy-ns / chunks-claimed counters,
  // registered with gq::telemetry so exporters can report utilization and
  // imbalance.  Worker 0 is the calling thread; spawned workers are 1..
  // threads-1 (matching the pinning order).  The counters are only written
  // when telemetry::enabled() — the disabled cost per chunk is one relaxed
  // load and a branch — and the whole member compiles to nothing when
  // telemetry is compiled out.
  telemetry::RegisteredPool telemetry_pool_;

  // Lock-free hot path: chunk claims and completions.
  std::atomic<std::uint64_t> claim_{0};    // packed {epoch, next index}
  std::atomic<std::size_t> completed_{0};  // finished task count

  // Batch-boundary coordination only.
  std::mutex mutex_;
  std::condition_variable work_cv_;   // wakes workers for a new batch
  std::condition_variable done_cv_;   // wakes run() at end of batch
  Batch batch_;
  std::uint64_t generation_ = 0;      // batch sequence number
  std::exception_ptr batch_error_;    // first exception thrown by a task
  bool stop_ = false;
};

}  // namespace gq
