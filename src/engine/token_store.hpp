// Pooled flat per-node token storage for the engine's batched token split.
//
// The sequential token split keeps a std::vector<std::vector<Token>> —
// n vector headers plus one small heap block per occupied node, rebuilt
// from scratch on every call.  Algorithm 3 calls the split once per
// duplication iteration, so at n = 10^6 that is millions of constructions
// and small allocations per exact_quantile run.  TokenStore replaces it
// with one flat slab of kInlineCap slots per node plus a rarely-touched
// per-node overflow vector, and the whole structure is pooled on the
// Engine (via Engine::scratch), so a later call finds all capacity warm:
// steady-state rounds allocate nothing.
//
// Node lists keep exact std::vector semantics — push_back appends, the
// iteration order is insertion order, back()/pop_back() touch the newest
// token — because the batched split must stay bit-identical to the
// sequential one, and which token is split (the first heavy) or scattered
// (the last) is observable in the result.
//
// The inline slab is sized for the common case: random scattering keeps
// per-node load at O(log n / log log n) w.h.p. and the split caps total
// tokens at 4n/5, so nodes holding more than kInlineCap tokens are rare.
// Overflow growth is counted (atomically — delivery tasks push
// concurrently for different nodes) so the allocation-freeness tests can
// pin "warm rerun allocates nothing".
//
// Concurrency contract: a node's list is mutated by at most one task per
// parallel section (its shard's kernel while sending, its destination
// partition's task while delivering), same as every other node-indexed
// slot in the engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/token_split.hpp"
#include "util/prefetch.hpp"

namespace gq {

class TokenStore {
 public:
  // Inline token slots per node; chosen so Phase-B steady state (at most a
  // couple of tokens per node) never touches the overflow vectors.
  static constexpr std::uint32_t kInlineCap = 4;

  // Prepares storage for n nodes, keeping capacity from previous calls.
  // Per-node state is NOT cleared here: the caller's minting kernel calls
  // clear_node(v) for every node from its owning shard, which both resets
  // the list and first-touches the node's slots on that worker.
  void ensure(std::uint32_t n) {
    n_ = n;
    if (inline_slots_.size() < static_cast<std::size_t>(n) * kInlineCap) {
      inline_slots_.resize(static_cast<std::size_t>(n) * kInlineCap);
    }
    if (count_.size() < n) count_.resize(n);
    if (overflow_.size() < n) overflow_.resize(n);
  }

  void clear_node(std::uint32_t v) {
    count_[v] = 0;
    overflow_[v].clear();  // keeps the rare warmed-up overflow capacity
  }

  [[nodiscard]] std::uint32_t size(std::uint32_t v) const {
    return count_[v];
  }

  [[nodiscard]] Token& at(std::uint32_t v, std::uint32_t i) {
    return i < kInlineCap
               ? inline_slots_[static_cast<std::size_t>(v) * kInlineCap + i]
               : overflow_[v][i - kInlineCap];
  }
  [[nodiscard]] const Token& at(std::uint32_t v, std::uint32_t i) const {
    return i < kInlineCap
               ? inline_slots_[static_cast<std::size_t>(v) * kInlineCap + i]
               : overflow_[v][i - kInlineCap];
  }

  [[nodiscard]] const Token& front(std::uint32_t v) const { return at(v, 0); }
  [[nodiscard]] Token& back(std::uint32_t v) {
    return at(v, count_[v] - 1);
  }

  void push_back(std::uint32_t v, const Token& t) {
    const std::uint32_t i = count_[v]++;
    if (i < kInlineCap) {
      inline_slots_[static_cast<std::size_t>(v) * kInlineCap + i] = t;
      return;
    }
    auto& of = overflow_[v];
    if (of.size() == of.capacity()) {
      overflow_allocs_.fetch_add(1, std::memory_order_relaxed);
    }
    of.push_back(t);  // invariant: of.size() == count_[v] - 1 - kInlineCap
  }

  void pop_back(std::uint32_t v) {
    const std::uint32_t i = --count_[v];
    if (i >= kInlineCap) overflow_[v].pop_back();
  }

  // Prefetch hint for the scatter delivery fold: warms the two lines an
  // imminent push_back(v, ...) will touch (the node's count and its inline
  // slots).  Advisory only — no observable effect.
  void prefetch_node(std::uint32_t v) const {
    prefetch_read(&count_[v]);
    prefetch_read(&inline_slots_[static_cast<std::size_t>(v) * kInlineCap]);
  }

  // Overflow-vector growths since construction; standing still across a
  // warm rerun is the store's allocation-freeness criterion.
  [[nodiscard]] std::uint64_t overflow_allocs() const noexcept {
    return overflow_allocs_.load(std::memory_order_relaxed);
  }

 private:
  std::uint32_t n_ = 0;
  std::vector<Token> inline_slots_;       // n * kInlineCap flat slots
  std::vector<std::uint32_t> count_;      // tokens held per node
  std::vector<std::vector<Token>> overflow_;  // slots beyond kInlineCap
  std::atomic<std::uint64_t> overflow_allocs_{0};
};

}  // namespace gq
