// Configuration for the sharded parallel execution engine.
#pragma once

#include <cstdint>

namespace gq {

struct EngineConfig {
  // Worker threads for round execution.  0 means "use the hardware
  // concurrency"; 1 runs everything inline on the calling thread (no worker
  // threads are spawned).  The engine's results are bit-identical at every
  // thread count — threads only change wall-clock time.
  unsigned threads = 0;

  // Nodes per shard.  Each shard is one unit of parallel work with its own
  // Metrics accumulator; shard boundaries are fixed by (n, shard_size)
  // alone, never by the thread count, so the per-shard merge order — and
  // with it every metric — is deterministic.  Smaller shards balance load
  // better; larger shards amortise dispatch overhead.
  std::uint32_t shard_size = 1u << 14;

  // Nodes per gather block in the batched kernels' hot loops.  A kernel
  // round first materialises a block's peer indices into a scratch lane,
  // issues software prefetches for the peer state lines, then runs the
  // compute pass against warm lines.  Purely a performance knob: draw
  // order, results, and Metrics are identical at every block size (pinned
  // by tests/test_engine.cpp).  0 picks the tuned default.
  std::uint32_t gather_block = 0;

  // Minimum node count at which the failure-free tournament and
  // median-dynamics kernels switch their ping-pong state from pooled Key
  // buffers to interned 32-bit rank lanes (sim/key_intern.hpp).  Below
  // it the whole state is cache-resident, so the O(n log n) intern costs
  // more than the compact gathers save; above it the 6x smaller gather
  // footprint dominates.  Purely a performance knob (results and Metrics
  // are identical under either representation); 0 picks the tuned
  // default.  The robust kernels always intern — their repeated fan-out
  // pulls amortise the sort even at small n.
  std::uint32_t intern_min_nodes = 0;

  // Pin worker threads to distinct cores so first-touch page placement
  // (FirstTouchBuffer, scatter mailbox rows) survives scheduler migration.
  // Opt-in: pinning a shared machine's cores is a policy decision the
  // engine must not make silently.  Where the platform offers no affinity
  // API this is a no-op with a one-line warning.  The calling thread is
  // never pinned (it belongs to the application).
  bool pin_workers = false;
};

}  // namespace gq
