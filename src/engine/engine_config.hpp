// Configuration for the sharded parallel execution engine.
#pragma once

#include <cstdint>

namespace gq {

struct EngineConfig {
  // Worker threads for round execution.  0 means "use the hardware
  // concurrency"; 1 runs everything inline on the calling thread (no worker
  // threads are spawned).  The engine's results are bit-identical at every
  // thread count — threads only change wall-clock time.
  unsigned threads = 0;

  // Nodes per shard.  Each shard is one unit of parallel work with its own
  // Metrics accumulator; shard boundaries are fixed by (n, shard_size)
  // alone, never by the thread count, so the per-shard merge order — and
  // with it every metric — is deterministic.  Smaller shards balance load
  // better; larger shards amortise dispatch overhead.
  std::uint32_t shard_size = 1u << 14;
};

}  // namespace gq
