// Batched whole-algorithm kernels on the parallel Engine.
//
// These run the core/ algorithms as sharded round kernels over contiguous
// engine-pooled state: no virtual dispatch, no per-node allocation, one to
// three parallel sections per gossip round.  State lives in two ping-pong
// lanes of 32-bit *interned key ranks* (sim/key_intern.hpp): the state's
// distinct keys are interned into a sorted table once per kernel — reused
// across the consecutive kernels of one pipeline via an exactly-verified
// session — and commits read lane A / write lane B, so A doubles as the
// iteration-start snapshot with no copy.  Rank order is key order, so
// min/max/median commits decide identically while a random peer gather
// touches a 4-byte entry (16 per cache line) instead of a Key record.
//
// Hot loops are *blocked*: for each block of EngineConfig::gather_block
// nodes a round first materialises the block's peer picks into pooled
// index lanes (per-node draw order unchanged), issues software prefetches
// over the peer lane lines, then runs the compute pass against warm lines
// — turning the latency-bound random gather into a prefetchable stream.
// Round accounting stays O(shards): messages are counted in per-shard
// register accumulators and flushed once per parallel section via
// Metrics::record_messages.
//
// Each kernel is **bit-identical** to its sequential counterpart — same
// per-node draw order from the counter-based streams, same commit rule,
// same Metrics, at every gather_block value — which the engine test suite
// pins at 1, 2, and 8 threads:
//
//   * median_dynamics         == MedianDynamicsProtocol via run_protocols
//   * two_tournament          == core/two_tournament (Algorithm 1)
//   * three_tournament        == core/three_tournament (Algorithm 2)
//   * robust_two_tournament   == core/robust.cpp (Section 5.1)
//   * robust_three_tournament == core/robust.cpp (Section 5.1)
//   * robust_coverage         == core/robust.cpp (Theorem 1.4 tail)
//
// The tournament kernels take the same pre-/post-conditions as the core
// versions (failure-free network; one key per node) and return the same
// outcome structs; the robust kernels share the schedule-level control flow
// with the sequential path via core/robust_pipeline.hpp and accept any
// FailureModel.  The per-iteration observer hook is not offered here: it
// would force materialising the AoS state every iteration, defeating the
// batching — use the sequential path for instrumented runs.
//
// The robust kernels batch the k-fold fan-out pulls of Section 5.1 by
// advancing the round counter for a whole pull block up front and letting
// each node fold its own good samples directly from the immutable
// block-start snapshot — one parallel section per iteration instead of
// k round sweeps, with the n x k sample matrix of the sequential path
// replaced by three pooled per-node sample slots (per-shard slices for the
// final K-sample step).  A node records the peers of its successful pulls
// first — prefetching the first few peers' good-flag and rank-lane lines
// while the remaining draws' ALU work runs — then folds them in pull-round
// order, which collects exactly the sequential path's samples.  Good
// flags, rank lanes, and pick slices live in Engine::scratch, so
// steady-state robust rounds allocate nothing (tests/test_engine_alloc.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/multi_pipeline.hpp"
#include "core/robust_pipeline.hpp"
#include "core/three_tournament.hpp"
#include "core/two_tournament.hpp"
#include "engine/engine.hpp"
#include "runtime/protocol.hpp"
#include "sim/key.hpp"

namespace gq {

// The [DGM+11] median dynamics as a batched kernel: `iterations` iterations
// of two pull rounds each, committing median(own, a, b) when both samples
// arrived (a failed pull forfeits the iteration's update).  Bit-identical
// to driving MedianDynamicsProtocol instances through run_protocols with
// the same (seed, failure model, max_rounds, bits_per_message).
RuntimeResult median_dynamics(Engine& engine, std::vector<Key>& state,
                              std::uint64_t iterations,
                              std::uint64_t max_rounds,
                              std::uint64_t bits_per_message);

// Algorithm 1 (2-TOURNAMENT) on the engine; see core/two_tournament.hpp.
TwoTournamentOutcome two_tournament(Engine& engine, std::vector<Key>& state,
                                    double phi, double eps,
                                    bool truncate_last = true);

// Algorithm 2 (3-TOURNAMENT) on the engine; see core/three_tournament.hpp.
ThreeTournamentOutcome three_tournament(Engine& engine,
                                        std::vector<Key>& state, double eps,
                                        std::uint32_t final_sample_size = 15);

// Robust Algorithm 1 on the engine; see core/robust.hpp.  `good` is the
// per-node good flag, carried across phases (pass all-true initially).
RobustTwoTournamentOutcome robust_two_tournament(Engine& engine,
                                                 std::vector<Key>& state,
                                                 std::vector<bool>& good,
                                                 double phi, double eps,
                                                 bool truncate_last = true);

// Robust Algorithm 2 on the engine, including the robust final sampling
// step; see core/robust.hpp.
RobustThreeTournamentOutcome robust_three_tournament(
    Engine& engine, std::vector<Key>& state, std::vector<bool>& good,
    double eps, std::uint32_t final_sample_size = 15);

// Coverage tail on the engine: for `t` rounds every unserved node pulls
// and adopts the output of any served node it reaches.  Returns rounds
// consumed; see core/robust.hpp.
std::uint64_t robust_coverage(Engine& engine, std::vector<Key>& outputs,
                              std::vector<bool>& valid, std::uint32_t t);

// ---- shared-schedule multi-quantile kernels (core/multi_pipeline.hpp) -----
//
// Per-node state is a node-major q-lane matrix of interned ranks (q lanes
// x 4 bytes: q = 16 lanes fit one cache line), ping-ponged like the single
// lanes above; one peer draw per node per round serves every lane, and the
// blocked gather prefetches whole peer *rows*.  The key multiset is
// interned ONCE in multi_tournament_begin — always interned, regardless of
// EngineConfig::intern_min_nodes: a Key-typed lane matrix would duplicate
// every kernel for a representation that is unobservable (same draws, same
// commits, same Metrics), and the one O(n log n) sort is amortised over q
// lanes of gather rounds.  The intern session's lane A is left untouched,
// so a service session's adopted encoding stays valid across multi runs.
//
// Failure-free only: the shared control flow routes robust runs through
// per-target robust pipelines (see core/multi_pipeline.hpp).  Driven by
// engine/pipelines.cpp through the shared template; bit-identity against
// the sequential core/multi_quantile.cpp instantiation is pinned by
// tests/test_engine_multi.cpp at 1/2/8 threads.
void multi_tournament_begin(Engine& engine, std::span<const Key> keys,
                            std::uint32_t lanes);
void multi_two_iteration(Engine& engine,
                         std::span<const MultiLaneStep> steps);
void multi_three_iteration(Engine& engine);
void multi_final_sample(Engine& engine, std::uint32_t k_samples,
                        std::vector<std::vector<Key>>& outputs);

// Session reuse hook for long-lived callers (src/service/): seeds the
// kernels' interned session with an externally maintained encoding of the
// state the caller is about to run a pipeline on — `table` sorted distinct
// (a superset of the state's distinct keys is fine), `lanes[v]` the table
// rank of node v's key.  The next kernel's existing exact verify pass
// (state[v] == table[lanes[v]]) then hits and the O(n log n) intern sort is
// skipped; a caller handing over a stale or wrong encoding just fails the
// verify and pays a fresh intern, never a wrong answer.  Only the interned
// representation consults the session (n >= EngineConfig::intern_min_nodes;
// below it the kernels run on pooled Key buffers), and a kernel that
// mutates the key multiset mid-pipeline (the exact pipeline's duplication
// step) re-interns exactly as it would cold.
void adopt_intern_session(Engine& engine, std::span<const Key> table,
                          std::span<const std::uint32_t> lanes);

}  // namespace gq
