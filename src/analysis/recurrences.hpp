// The analytic recurrences driving the tournament algorithms.
//
// Algorithm 1 (2-TOURNAMENT) squares the high-side fraction each iteration:
//   h_{i+1} = h_i^2,
// stopping once h <= T = 1/2 - eps, with the last iteration executed only
// with probability delta = (h_i - T)/(h_i - h_{i+1}) per node so that the
// expected final fraction lands exactly on T (Lemma 2.4).
//
// Algorithm 2 (3-TOURNAMENT) applies the median-of-three map to both tails:
//   l_{i+1} = 3 l_i^2 - 2 l_i^3,
// stopping once l <= T = n^(-1/3) (Lemma 2.12).
//
// These schedules are *protocol state*: every node evaluates them locally
// from (phi, eps, n), which is what lets the algorithm run without any
// coordination.  They are also the analytic predictions that experiment E5
// compares measured tail fractions against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gq {

struct TwoTournamentSchedule {
  // h[0..t]: analytic tail fraction before iteration i (h[t] = value after
  // the final, possibly truncated, iteration).
  std::vector<double> h;
  // delta[i]: probability with which iteration i performs the 2-tournament
  // (1.0 for all but possibly the final iteration).
  std::vector<double> delta;

  [[nodiscard]] std::size_t iterations() const noexcept {
    return delta.size();
  }
};

// Schedule for driving an initial tail fraction h0 down to T = 1/2 - eps.
// h0 and eps must lie in [0,1); returns an empty schedule when h0 <= T.
[[nodiscard]] TwoTournamentSchedule two_tournament_schedule(double h0,
                                                            double eps);

struct ThreeTournamentSchedule {
  std::vector<double> l;  // l[0..t] analytic tail trajectory
  [[nodiscard]] std::size_t iterations() const noexcept {
    return l.empty() ? 0 : l.size() - 1;
  }
};

// Schedule for driving both tails from 1/2 - eps down to T = n^(-1/3).
[[nodiscard]] ThreeTournamentSchedule three_tournament_schedule(
    double eps, std::uint32_t n);

// One step of the median-of-three map 3x^2 - 2x^3.
[[nodiscard]] constexpr double median_map(double x) noexcept {
  return 3.0 * x * x - 2.0 * x * x * x;
}

}  // namespace gq
