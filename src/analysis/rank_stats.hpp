// Offline rank evaluation: the omniscient yardstick experiments measure
// protocol outputs against.  Nothing here is visible to the protocols.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"

namespace gq {

// Precomputed sorted view of an instance for O(log n) rank queries.
class RankScale {
 public:
  explicit RankScale(std::span<const Key> keys);

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  // 1-based rank: #{keys <= k}.
  [[nodiscard]] std::uint64_t rank(const Key& k) const;

  // rank(k) / n in (0, 1].
  [[nodiscard]] double quantile_of(const Key& k) const;

  // The key at 1-based rank r.
  [[nodiscard]] const Key& key_at_rank(std::uint64_t r) const;

  // The exact phi-quantile: key at rank clamp(ceil(phi*n), 1, n).
  [[nodiscard]] const Key& exact_quantile(double phi) const;

  // Target rank for an exact phi-quantile query.
  [[nodiscard]] std::uint64_t target_rank(double phi) const;

  // Whether `k`'s rank lies in the eps-approximate window
  // [(phi-eps)*n, (phi+eps)*n] (ranks clamped to [1, n]).
  [[nodiscard]] bool within_eps(const Key& k, double phi, double eps) const;

 private:
  std::vector<Key> sorted_;
};

// Aggregate accuracy of per-node outputs against a quantile target.
struct QuantileErrorSummary {
  double max_abs_error = 0.0;     // max over nodes of |quantile_of(out)-phi|
  double mean_abs_error = 0.0;
  double frac_within_eps = 0.0;   // fraction of nodes inside the eps window
  std::size_t nodes = 0;
};

[[nodiscard]] QuantileErrorSummary evaluate_outputs(
    const RankScale& scale, std::span<const Key> outputs, double phi,
    double eps);

}  // namespace gq
