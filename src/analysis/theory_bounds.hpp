// Closed-form bounds from the paper, used by tests (the implementation must
// not exceed them) and by benches (measured-vs-predicted columns).
#pragma once

#include <cstdint>

namespace gq {

// Lemma 2.2: iterations of Algorithm 1 satisfy t <= log_{7/4}(4/eps) + 2.
[[nodiscard]] double phase1_iteration_bound(double eps);

// Lemma 2.12: iterations of Algorithm 2 satisfy
// t <= log_{11/8}(1/(4 eps)) + log2(log4 n).
[[nodiscard]] double phase2_iteration_bound(double eps, std::uint32_t n);

// Theorem 1.3: any algorithm using fewer than max(0.5*loglog n, log4(8/eps))
// rounds fails with probability >= 1/3.
[[nodiscard]] double lower_bound_rounds(double eps, std::uint64_t n);

// Engineering floor on eps below which the tournament pipeline's
// concentration is no longer trustworthy at practical n and the library
// falls back to the exact algorithm (Theorem 1.2's bootstrap route).  The
// paper's asymptotic floor is Omega(n^-0.096) (Theorem 2.1); the constant
// here was calibrated empirically (see EXPERIMENTS.md).
[[nodiscard]] double eps_tournament_floor(std::uint32_t n);

// Section 5.1: per-iteration pull fan-out k = numerator/(1-mu) *
// ln(numerator/(1-mu)) + 1 guaranteeing enough good pulls w.h.p.
[[nodiscard]] std::uint32_t robust_pull_count(double mu, double numerator);

}  // namespace gq
