#include "analysis/recurrences.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace gq {
namespace {

// Hard cap on schedule length; both recurrences converge doubly
// exponentially so realistic schedules are < 60 iterations even for
// astronomically small eps.  The cap turns a parameterization bug into a
// loud failure instead of an unbounded loop.
constexpr std::size_t kMaxIterations = 4096;

}  // namespace

TwoTournamentSchedule two_tournament_schedule(double h0, double eps) {
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must be in (0, 1/2)");
  GQ_REQUIRE(h0 >= 0.0 && h0 <= 1.0, "h0 must be in [0,1]");
  const double target = 0.5 - eps;

  TwoTournamentSchedule s;
  s.h.push_back(h0);
  double h = h0;
  // The epsilon guard absorbs FP noise in h0 (e.g. 1.0 - (phi + eps)
  // landing a few ulps above the target when it should equal it).
  while (h > target + 1e-12) {
    GQ_REQUIRE(s.delta.size() < kMaxIterations,
               "2-TOURNAMENT schedule did not converge");
    const double next = h * h;
    const double delta =
        next >= target ? 1.0 : std::min(1.0, (h - target) / (h - next));
    s.delta.push_back(delta);
    // Expected tail after a delta-truncated iteration (Lemma 2.4):
    // (1-delta)*h + delta*h^2; equals `next` when delta == 1 and `target`
    // when truncated.
    h = (1.0 - delta) * h + delta * next;
    s.h.push_back(h);
  }
  return s;
}

ThreeTournamentSchedule three_tournament_schedule(double eps,
                                                  std::uint32_t n) {
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must be in (0, 1/2)");
  GQ_REQUIRE(n >= 2, "n must be at least 2");
  const double target = std::pow(static_cast<double>(n), -1.0 / 3.0);

  ThreeTournamentSchedule s;
  double l = 0.5 - eps;
  s.l.push_back(l);
  while (l > target) {
    GQ_REQUIRE(s.l.size() < kMaxIterations,
               "3-TOURNAMENT schedule did not converge");
    l = median_map(l);
    s.l.push_back(l);
  }
  return s;
}

}  // namespace gq
