#include "analysis/rank_stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace gq {

RankScale::RankScale(std::span<const Key> keys)
    : sorted_(keys.begin(), keys.end()) {
  GQ_REQUIRE(!sorted_.empty(), "RankScale needs a non-empty instance");
  std::sort(sorted_.begin(), sorted_.end());
}

std::uint64_t RankScale::rank(const Key& k) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), k);
  return static_cast<std::uint64_t>(it - sorted_.begin());
}

double RankScale::quantile_of(const Key& k) const {
  return static_cast<double>(rank(k)) / static_cast<double>(size());
}

const Key& RankScale::key_at_rank(std::uint64_t r) const {
  GQ_REQUIRE(r >= 1 && r <= size(), "rank out of range");
  return sorted_[r - 1];
}

std::uint64_t RankScale::target_rank(double phi) const {
  GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  const auto n = static_cast<double>(size());
  auto r = static_cast<std::uint64_t>(std::ceil(phi * n));
  return std::clamp<std::uint64_t>(r, 1, size());
}

const Key& RankScale::exact_quantile(double phi) const {
  return key_at_rank(target_rank(phi));
}

bool RankScale::within_eps(const Key& k, double phi, double eps) const {
  const auto n = static_cast<double>(size());
  const double r = static_cast<double>(rank(k));
  const double lo = std::max(1.0, std::floor((phi - eps) * n));
  const double hi = std::min(n, std::ceil((phi + eps) * n));
  return r >= lo - 1e-9 && r <= hi + 1e-9;
}

QuantileErrorSummary evaluate_outputs(const RankScale& scale,
                                      std::span<const Key> outputs, double phi,
                                      double eps) {
  QuantileErrorSummary s;
  s.nodes = outputs.size();
  if (outputs.empty()) return s;
  std::size_t ok = 0;
  double sum_err = 0.0;
  for (const Key& out : outputs) {
    const double err = std::abs(scale.quantile_of(out) - phi);
    s.max_abs_error = std::max(s.max_abs_error, err);
    sum_err += err;
    if (scale.within_eps(out, phi, eps)) ++ok;
  }
  s.mean_abs_error = sum_err / static_cast<double>(outputs.size());
  s.frac_within_eps =
      static_cast<double>(ok) / static_cast<double>(outputs.size());
  return s;
}

}  // namespace gq
