#include "analysis/theory_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace gq {

double phase1_iteration_bound(double eps) {
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must be in (0, 1/2)");
  return std::log(4.0 / eps) / std::log(7.0 / 4.0) + 2.0;
}

double phase2_iteration_bound(double eps, std::uint32_t n) {
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must be in (0, 1/2)");
  GQ_REQUIRE(n >= 4, "n must be at least 4");
  const double log4n = std::log(static_cast<double>(n)) / std::log(4.0);
  return std::max(0.0, std::log(1.0 / (4.0 * eps)) / std::log(11.0 / 8.0)) +
         std::log2(std::max(2.0, log4n));
}

double lower_bound_rounds(double eps, std::uint64_t n) {
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must be in (0, 1/2)");
  GQ_REQUIRE(n >= 4, "n must be at least 4");
  const double loglog = std::log2(std::log2(static_cast<double>(n)));
  const double eps_term = std::log(8.0 / eps) / std::log(4.0);
  return std::max(0.5 * loglog, eps_term);
}

double eps_tournament_floor(std::uint32_t n) {
  GQ_REQUIRE(n >= 2, "n must be at least 2");
  const double nn = static_cast<double>(n);
  // Two regimes: the concentration of the tournament tails needs
  // eps*n >> sqrt(n) fluctuations, and phase II's sampling tail needs
  // eps >> n^(-1/3).  Take the larger, capped at 1/4 where the whole
  // approximation notion degenerates.
  const double floor_val =
      std::max(2.0 * std::pow(nn, -1.0 / 3.0), 8.0 / nn);
  return std::min(0.25, floor_val);
}

std::uint32_t robust_pull_count(double mu, double numerator) {
  GQ_REQUIRE(mu >= 0.0 && mu < 1.0, "mu must be in [0,1)");
  GQ_REQUIRE(numerator >= 1.0, "numerator must be >= 1");
  const double base = numerator / (1.0 - mu);
  const double k = base * std::log(std::max(std::exp(1.0), base)) + 1.0;
  return static_cast<std::uint32_t>(std::ceil(k));
}

}  // namespace gq
