#include "agg/push_sum.hpp"

#include <bit>
#include <cmath>

#include "util/require.hpp"

namespace gq {
namespace {

// A push-sum message carries two reals (value mass, weight mass).
constexpr std::uint64_t kPushSumMessageBits = push_sum_message_bits(1);

std::uint64_t ceil_log2(std::uint64_t n) {
  return static_cast<std::uint64_t>(std::bit_width(n - 1));
}

std::uint64_t scale_for_failures(const FailureModel& failures,
                                 std::uint64_t rounds) {
  const double mu = failures.max_probability();
  if (mu <= 0.0) return rounds;
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(rounds) / (1.0 - mu)));
}

}  // namespace

std::uint64_t push_sum_rounds_for_exact(std::uint32_t n,
                                        const FailureModel& failures) {
  // Calibrated: the rounding cliff (first integer-exact counts across all
  // nodes) sits near 2 log2 n + 30 for n up to 2^18; this schedule clears
  // it with ~1/3 margin.  See EXPERIMENTS.md (counting calibration).
  return scale_for_failures(failures, 3 * ceil_log2(n) + 20);
}

std::uint64_t push_sum_rounds_for_exact(const Network& net) {
  return push_sum_rounds_for_exact(net.size(), net.failures());
}

std::uint64_t push_sum_rounds_default(std::uint32_t n,
                                      const FailureModel& failures) {
  return scale_for_failures(failures, 3 * ceil_log2(n) + 20);
}

std::uint64_t push_sum_rounds_default(const Network& net) {
  return push_sum_rounds_default(net.size(), net.failures());
}

PushSumResult push_sum_average(Network& net, std::span<const double> x,
                               std::uint64_t rounds) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(x.size() == n, "one input value per node required");
  if (rounds == 0) rounds = push_sum_rounds_default(net);

  std::vector<double> s(x.begin(), x.end());
  std::vector<double> w(n, 1.0);
  std::vector<double> s_in(n), w_in(n);

  for (std::uint64_t r = 0; r < rounds; ++r) {
    const std::vector<std::uint32_t> dests =
        net.push_round(kPushSumMessageBits);
    std::fill(s_in.begin(), s_in.end(), 0.0);
    std::fill(w_in.begin(), w_in.end(), 0.0);
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t d = dests[v];
      if (d == Network::kNoPeer) continue;  // failed: keeps whole pair
      s[v] *= 0.5;
      w[v] *= 0.5;
      s_in[d] += s[v];
      w_in[d] += w[v];
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      s[v] += s_in[v];
      w[v] += w_in[v];
    }
  }

  PushSumResult out;
  out.rounds = rounds;
  out.estimates.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    // w_v > 0 always: a node keeps at least half of its own weight each
    // round, so w_v >= 2^-rounds > 0.
    out.estimates[v] = s[v] / w[v];
  }
  return out;
}

PushSumResult push_sum_sum(Network& net, std::span<const double> x,
                           std::uint64_t rounds) {
  PushSumResult res = push_sum_average(net, x, rounds);
  for (auto& e : res.estimates) e *= static_cast<double>(net.size());
  return res;
}

}  // namespace gq
