#include "agg/spread.hpp"

#include <bit>
#include <cmath>
#include <functional>

namespace gq {
namespace {

SpreadResult to_key_result(GenericSpreadResult<Key>&& g) {
  SpreadResult out;
  out.values = std::move(g.values);
  out.rounds = g.rounds;
  out.converged = g.converged;
  return out;
}

}  // namespace

std::uint64_t spread_rounds_cap(std::uint32_t n,
                                const FailureModel& failures) {
  const auto log2n = static_cast<std::uint64_t>(
      std::bit_width(static_cast<std::uint64_t>(n) - 1));
  const std::uint64_t base = 8 * log2n + 50;
  const double mu = failures.max_probability();
  if (mu <= 0.0) return base;
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(base) / (1.0 - mu)));
}

std::uint64_t spread_rounds_cap(const Network& net) {
  return spread_rounds_cap(net.size(), net.failures());
}

SpreadResult spread_max(Network& net, std::span<const Key> init,
                        std::uint64_t max_rounds) {
  return to_key_result(
      spread_best(net, init, std::less<Key>{}, key_bits(net.size()),
                  max_rounds));
}

SpreadResult spread_min(Network& net, std::span<const Key> init,
                        std::uint64_t max_rounds) {
  return to_key_result(
      spread_best(net, init, std::greater<Key>{}, key_bits(net.size()),
                  max_rounds));
}

}  // namespace gq
