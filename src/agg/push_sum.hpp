// PUSH-SUM (Kempe, Dobra, Gehrke; FOCS'03): gossip-based computation of sums
// and averages.
//
// Every node v maintains a pair (s_v, w_v), initially (x_v, 1).  In each
// round every node halves its pair, keeps one half and pushes the other half
// to a uniformly random other node; incoming pairs are added component-wise.
// The estimate s_v / w_v converges to the average of the x's; the relative
// error drops below eps w.h.p. after O(log n + log 1/eps) rounds.
//
// Mass conservation makes the protocol robust to the Section-5 failure
// model for free: a node whose operation fails simply keeps its whole pair
// for the round, which delays diffusion by a constant factor but never
// loses mass.  Failure handling is therefore inherited from the Network's
// FailureModel with no protocol change.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/network.hpp"

namespace gq {

struct PushSumResult {
  std::vector<double> estimates;  // per-node estimate of the average
  std::uint64_t rounds = 0;       // rounds consumed by this invocation
};

// Number of rounds after which every node's estimate has relative error
// below roughly n^-3 w.h.p. in the failure-free model; scaled by 1/(1-mu)
// under failures.  Used as the default by the helpers below.  The
// (n, failures) overloads are the pure round-schedule logic shared with the
// parallel engine's batched counting kernels — both executors must derive
// identical schedules or their Metrics drift apart.
[[nodiscard]] std::uint64_t push_sum_rounds_for_exact(
    std::uint32_t n, const FailureModel& failures);
[[nodiscard]] std::uint64_t push_sum_rounds_for_exact(const Network& net);

// Shorter default for applications that only need a constant-factor
// approximation of an average.
[[nodiscard]] std::uint64_t push_sum_rounds_default(
    std::uint32_t n, const FailureModel& failures);
[[nodiscard]] std::uint64_t push_sum_rounds_default(const Network& net);

// A push-sum message carries the value masses plus one weight word; the
// D-dimensional protocol sends D+1 reals.  Shared with the engine kernels.
[[nodiscard]] constexpr std::uint64_t push_sum_message_bits(
    std::size_t dims) noexcept {
  return 64 * (dims + 1);
}

// Runs push-sum for `rounds` rounds (0 = push_sum_rounds_default) and
// returns every node's estimate of avg(x).  x.size() must equal net.size().
[[nodiscard]] PushSumResult push_sum_average(Network& net,
                                             std::span<const double> x,
                                             std::uint64_t rounds = 0);

// Estimates sum(x) at every node: push_sum_average scaled by n (node count
// is global knowledge in the model).
[[nodiscard]] PushSumResult push_sum_sum(Network& net,
                                         std::span<const double> x,
                                         std::uint64_t rounds = 0);

// D-dimensional push-sum: averages D per-node vectors in a single protocol
// run with a shared weight coordinate (messages carry D+1 reals, still O(1)
// words).  Used by the exact algorithm to obtain several exact counts for
// the price of one diffusion.
template <std::size_t D>
struct MultiPushSumResult {
  std::vector<std::array<double, D>> estimates;  // per-node averages
  std::uint64_t rounds = 0;
};

template <std::size_t D>
MultiPushSumResult<D> push_sum_average_multi(
    Network& net, std::span<const std::array<double, D>> x,
    std::uint64_t rounds = 0) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(x.size() == n, "one input vector per node required");
  if (rounds == 0) rounds = push_sum_rounds_default(net);
  const std::uint64_t bits = push_sum_message_bits(D);

  std::vector<std::array<double, D>> s(x.begin(), x.end());
  std::vector<double> w(n, 1.0);
  std::vector<std::array<double, D>> s_in(n);
  std::vector<double> w_in(n);

  for (std::uint64_t r = 0; r < rounds; ++r) {
    const std::vector<std::uint32_t> dests = net.push_round(bits);
    for (auto& a : s_in) a.fill(0.0);
    std::fill(w_in.begin(), w_in.end(), 0.0);
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t d = dests[v];
      if (d == Network::kNoPeer) continue;
      for (std::size_t j = 0; j < D; ++j) {
        s[v][j] *= 0.5;
        s_in[d][j] += s[v][j];
      }
      w[v] *= 0.5;
      w_in[d] += w[v];
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      for (std::size_t j = 0; j < D; ++j) s[v][j] += s_in[v][j];
      w[v] += w_in[v];
    }
  }

  MultiPushSumResult<D> out;
  out.rounds = rounds;
  out.estimates.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::size_t j = 0; j < D; ++j) out.estimates[v][j] = s[v][j] / w[v];
  }
  return out;
}

}  // namespace gq
