#include "agg/rank_count.hpp"

#include <cmath>

#include "agg/push_sum.hpp"
#include "util/require.hpp"

namespace gq {

CountResult gossip_count(Network& net, const std::vector<bool>& indicator,
                         std::uint64_t rounds) {
  GQ_REQUIRE(indicator.size() == net.size(),
             "one indicator bit per node required");
  if (rounds == 0) rounds = push_sum_rounds_for_exact(net);

  std::vector<double> x(indicator.size());
  for (std::size_t v = 0; v < indicator.size(); ++v) {
    x[v] = indicator[v] ? 1.0 : 0.0;
  }
  PushSumResult sum = push_sum_sum(net, x, rounds);

  CountResult out;
  out.rounds = sum.rounds;
  out.counts.resize(sum.estimates.size());
  for (std::size_t v = 0; v < sum.estimates.size(); ++v) {
    const double rounded = std::round(sum.estimates[v]);
    out.counts[v] = rounded <= 0.0 ? 0 : static_cast<std::uint64_t>(rounded);
  }
  return out;
}

CountResult gossip_rank(Network& net, std::span<const Key> keys,
                        const Key& threshold, std::uint64_t rounds) {
  std::vector<bool> indicator(keys.size());
  for (std::size_t v = 0; v < keys.size(); ++v) {
    indicator[v] = keys[v] <= threshold;
  }
  return gossip_count(net, indicator, rounds);
}

TripleCountResult gossip_count3(Network& net, const std::vector<bool>& ind_a,
                                const std::vector<bool>& ind_b,
                                const std::vector<bool>& ind_c,
                                std::uint64_t rounds) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(ind_a.size() == n && ind_b.size() == n && ind_c.size() == n,
             "one indicator bit per node required");
  if (rounds == 0) rounds = push_sum_rounds_for_exact(net);

  std::vector<std::array<double, 3>> x(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    x[v] = {ind_a[v] ? 1.0 : 0.0, ind_b[v] ? 1.0 : 0.0, ind_c[v] ? 1.0 : 0.0};
  }
  const MultiPushSumResult<3> avg = push_sum_average_multi<3>(
      net, std::span<const std::array<double, 3>>(x), rounds);

  TripleCountResult out;
  out.rounds = avg.rounds;
  out.a.resize(n);
  out.b.resize(n);
  out.c.resize(n);
  const auto to_count = [n](double e) {
    const double rounded = std::round(e * static_cast<double>(n));
    return rounded <= 0.0 ? std::uint64_t{0}
                          : static_cast<std::uint64_t>(rounded);
  };
  for (std::uint32_t v = 0; v < n; ++v) {
    out.a[v] = to_count(avg.estimates[v][0]);
    out.b[v] = to_count(avg.estimates[v][1]);
    out.c[v] = to_count(avg.estimates[v][2]);
  }
  return out;
}

}  // namespace gq
