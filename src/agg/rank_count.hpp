// Exact gossip counting (Algorithm 3, Step 5): compute #{v : x_v <= z} at
// every node by running push-sum on 0/1 indicators long enough that the
// relative error is below 1/(2n), then rounding to the nearest integer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"
#include "sim/network.hpp"

namespace gq {

struct CountResult {
  std::vector<std::uint64_t> counts;  // per-node rounded count
  std::uint64_t rounds = 0;
};

// Counts the number of true entries in `indicator` at every node.
[[nodiscard]] CountResult gossip_count(Network& net,
                                       const std::vector<bool>& indicator,
                                       std::uint64_t rounds = 0);

// Rank of `threshold` within `keys`: #{v : keys[v] <= threshold}.
[[nodiscard]] CountResult gossip_rank(Network& net, std::span<const Key> keys,
                                      const Key& threshold,
                                      std::uint64_t rounds = 0);

// Three exact counts in one diffusion (shared-weight 3D push-sum): per-node
// rounded counts of each indicator vector.
struct TripleCountResult {
  std::vector<std::uint64_t> a, b, c;
  std::uint64_t rounds = 0;
};

[[nodiscard]] TripleCountResult gossip_count3(
    Network& net, const std::vector<bool>& ind_a,
    const std::vector<bool>& ind_b, const std::vector<bool>& ind_c,
    std::uint64_t rounds = 0);

}  // namespace gq
