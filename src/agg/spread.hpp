// Rumor-spreading primitives: max/min broadcast over uniform gossip.
//
// Each round every node pulls from a uniformly random other node and keeps
// the "better" of the two payloads.  A single extreme value reaches all
// nodes in O(log n) rounds w.h.p. [FG85, Pit87]; under the Section-5 failure
// model the same bound holds with a 1/(1-mu) slowdown [ES09].
//
// Termination: the simulator stops as soon as all nodes agree (an omniscient
// check) and additionally enforces a cap.  A deployed system would stop
// after a fixed c*log n schedule or when a node's value is stable for a
// constant number of rounds; the round counts reported here are the honest
// cost of the process itself.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"
#include "sim/network.hpp"
#include "util/require.hpp"

namespace gq {

// Default cap on spreading rounds: generous multiple of log2 n, scaled for
// failures.  The (n, failures) overload is the pure schedule shared with
// the parallel engine's batched spread kernels.
[[nodiscard]] std::uint64_t spread_rounds_cap(std::uint32_t n,
                                              const FailureModel& failures);
[[nodiscard]] std::uint64_t spread_rounds_cap(const Network& net);

template <typename T>
struct GenericSpreadResult {
  std::vector<T> values;     // per-node final payload
  std::uint64_t rounds = 0;  // rounds consumed
  bool converged = false;    // all nodes hold the global best payload
};

// Spreads the extreme payload under strict weak order `less`: every node
// converges to the maximum element w.h.p.  `bits_per_message` is the
// accounted size of one payload.
template <typename T, typename Less>
GenericSpreadResult<T> spread_best(Network& net, std::span<const T> init,
                                   Less less, std::uint64_t bits_per_message,
                                   std::uint64_t max_rounds = 0) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(init.size() == n, "one payload per node required");
  if (max_rounds == 0) max_rounds = spread_rounds_cap(net);

  std::vector<T> cur(init.begin(), init.end());
  const T target = *std::max_element(cur.begin(), cur.end(), less);

  GenericSpreadResult<T> out;
  std::vector<T> next(n);
  const auto all_done = [&] {
    return std::all_of(cur.begin(), cur.end(), [&](const T& k) {
      return !less(k, target) && !less(target, k);
    });
  };
  for (std::uint64_t r = 0; r < max_rounds; ++r) {
    if (all_done()) {
      out.converged = true;
      break;
    }
    const std::vector<std::uint32_t> peers = net.pull_round(bits_per_message);
    ++out.rounds;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t p = peers[v];
      next[v] = (p != Network::kNoPeer && less(cur[v], cur[p])) ? cur[p]
                                                                : cur[v];
    }
    cur.swap(next);
  }
  if (!out.converged) out.converged = all_done();
  out.values = std::move(cur);
  return out;
}

struct SpreadResult {
  std::vector<Key> values;   // per-node final key
  std::uint64_t rounds = 0;  // rounds consumed
  bool converged = false;    // all nodes hold the global extreme
};

// Max-spreading: every node ends up with max(init) w.h.p.
[[nodiscard]] SpreadResult spread_max(Network& net, std::span<const Key> init,
                                      std::uint64_t max_rounds = 0);

// Min-spreading: every node ends up with min(init) w.h.p.
[[nodiscard]] SpreadResult spread_min(Network& net, std::span<const Key> init,
                                      std::uint64_t max_rounds = 0);

}  // namespace gq
